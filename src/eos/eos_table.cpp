#include "eos/eos_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "eos/stellar_terms.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace fhp::eos {

namespace {

constexpr char kMagic[8] = {'F', 'H', 'P', 'H', 'E', 'L', 'M', '2'};
constexpr double kLn10 = 2.302585092994046;

/// Cubic Hermite value bases and their derivatives on [0, 1].
inline void hermite(double t, double h0[2], double h1[2]) noexcept {
  const double t2 = t * t;
  const double t3 = t2 * t;
  h0[0] = 2 * t3 - 3 * t2 + 1;  // value at node 0
  h0[1] = -2 * t3 + 3 * t2;     // value at node 1
  h1[0] = t3 - 2 * t2 + t;      // derivative at node 0
  h1[1] = t3 - t2;              // derivative at node 1
}

inline void hermite_deriv(double t, double d0[2], double d1[2]) noexcept {
  const double t2 = t * t;
  d0[0] = 6 * t2 - 6 * t;
  d0[1] = -6 * t2 + 6 * t;
  d1[0] = 3 * t2 - 4 * t + 1;
  d1[1] = 3 * t2 - 2 * t;
}

/// Validate before any member computes sizes from the spec: a bogus grid
/// shape must throw here, not turn into a huge size_t product that the
/// storage mapping then tries (and fails) to honour.
const HelmTableSpec& validated(const HelmTableSpec& spec) {
  FHP_REQUIRE(spec.nrho >= 4 && spec.ntemp >= 4,
              "helm table needs at least a 4x4 grid");
  FHP_REQUIRE(spec.log_rho_max > spec.log_rho_min &&
                  spec.log_temp_max > spec.log_temp_min,
              "helm table axis bounds are inverted");
  return spec;
}

}  // namespace

HelmTable::HelmTable(const HelmTableSpec& spec, mem::HugePolicy policy,
                     mem::PagePool& pool)
    : spec_(validated(spec)),
      plane_elems_(static_cast<std::size_t>(spec.nrho) *
                   static_cast<std::size_t>(spec.ntemp)),
      storage_(plane_elems_ * kNumPlanes, policy, pool) {}

HelmTable HelmTable::build(const HelmTableSpec& spec, mem::HugePolicy policy,
                           mem::PagePool& pool) {
  HelmTable table(spec, policy, pool);
  const HelmholtzEos direct;

  const double dlr = (spec.log_rho_max - spec.log_rho_min) / (spec.nrho - 1);
  const double dlt = (spec.log_temp_max - spec.log_temp_min) / (spec.ntemp - 1);

  FHP_LOG(kInfo) << "building helm table " << spec.nrho << "x" << spec.ntemp
                 << " (" << table.bytes() / (1 << 20) << " MiB)...";

  auto idx = [&](int i, int j) {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(spec.nrho) +
           static_cast<std::size_t>(i);
  };

  for (int j = 0; j < spec.ntemp; ++j) {
    const double temp = std::pow(10.0, spec.log_temp_min + j * dlt);
    for (int i = 0; i < spec.nrho; ++i) {
      const double rho_ye = std::pow(10.0, spec.log_rho_min + i * dlr);
      const HelmholtzEos::EpState ep = direct.eval_ep(rho_ye, temp);
      const std::size_t n = idx(i, j);
      table.plane_data(kP)[n] = ep.p;
      table.plane_data(kPd)[n] = ep.p_d;
      table.plane_data(kPt)[n] = ep.p_t;
      table.plane_data(kE)[n] = ep.e;
      table.plane_data(kEd)[n] = ep.e_d;
      table.plane_data(kEt)[n] = ep.e_t;
      table.plane_data(kS)[n] = ep.s;
      table.plane_data(kSt)[n] = ep.s_t;
      table.plane_data(kEta)[n] = ep.eta;
      table.plane_data(kEtaD)[n] = ep.eta_d;
      table.plane_data(kEtaT)[n] = ep.eta_t;
    }
  }

  // Finite-difference passes for the quantities we lack analytically:
  // cross derivatives d2Q/(d rhoYe dT) from the T-derivative planes, and
  // dS/d(rhoYe) from the S plane.
  auto fd_rho = [&](Plane src, Plane dst) {
    for (int j = 0; j < spec.ntemp; ++j) {
      for (int i = 0; i < spec.nrho; ++i) {
        const int il = std::max(0, i - 1);
        const int ih = std::min(spec.nrho - 1, i + 1);
        const double rl = std::pow(10.0, spec.log_rho_min + il * dlr);
        const double rh = std::pow(10.0, spec.log_rho_min + ih * dlr);
        table.plane_data(dst)[idx(i, j)] =
            (table.plane_data(src)[idx(ih, j)] -
             table.plane_data(src)[idx(il, j)]) /
            (rh - rl);
      }
    }
  };
  fd_rho(kPt, kPdt);
  fd_rho(kEt, kEdt);
  fd_rho(kS, kSd);
  fd_rho(kSt, kSdt);
  fd_rho(kEtaT, kEtaDt);

  FHP_LOG(kInfo) << "helm table build complete";
  return table;
}

void HelmTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SystemError("cannot open '" + path + "' for writing", errno);
  }
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&spec_), sizeof spec_);
  out.write(reinterpret_cast<const char*>(storage_.data()),
            static_cast<std::streamsize>(storage_.size() * sizeof(double)));
  if (!out) {
    throw SystemError("write to '" + path + "' failed", errno);
  }
}

std::optional<HelmTable> HelmTable::load(const HelmTableSpec& spec,
                                         mem::HugePolicy policy,
                                         mem::PagePool& pool,
                                         const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8] = {};
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  HelmTableSpec file_spec{};
  in.read(reinterpret_cast<char*>(&file_spec), sizeof file_spec);
  if (!in || !(file_spec == spec)) return std::nullopt;

  HelmTable table(spec, policy, pool);
  in.read(reinterpret_cast<char*>(table.storage_.data()),
          static_cast<std::streamsize>(table.storage_.size() *
                                       sizeof(double)));
  if (!in) return std::nullopt;
  return table;
}

HelmTable HelmTable::build_or_load(const HelmTableSpec& spec,
                                   mem::HugePolicy policy,
                                   mem::PagePool& pool,
                                   const std::string& path) {
  if (!path.empty()) {
    if (auto cached = load(spec, policy, pool, path)) {
      FHP_LOG(kInfo) << "helm table loaded from " << path;
      return std::move(*cached);
    }
  }
  HelmTable table = build(spec, policy, pool);
  if (!path.empty()) {
    try {
      table.save(path);
      FHP_LOG(kInfo) << "helm table cached to " << path;
    } catch (const SystemError& e) {
      FHP_LOG(kWarn) << "could not cache helm table: " << e.what();
    }
  }
  return table;
}

HelmTable::Cell HelmTable::locate(double rho_ye, double temp) const {
  if (!(rho_ye > 0) || !(temp > 0)) {
    throw NumericsError("HelmTable: non-positive rho*Ye or T");
  }
  const double lx = std::log10(rho_ye);
  const double ly = std::log10(temp);
  const double dlr = (spec_.log_rho_max - spec_.log_rho_min) / (spec_.nrho - 1);
  const double dlt =
      (spec_.log_temp_max - spec_.log_temp_min) / (spec_.ntemp - 1);
  if (lx < spec_.log_rho_min - 1e-12 || lx > spec_.log_rho_max + 1e-12 ||
      ly < spec_.log_temp_min - 1e-12 || ly > spec_.log_temp_max + 1e-12) {
    throw NumericsError("HelmTable: (rhoYe=" + std::to_string(rho_ye) +
                        ", T=" + std::to_string(temp) + ") outside table");
  }
  Cell c;
  const double fi = (lx - spec_.log_rho_min) / dlr;
  const double fj = (ly - spec_.log_temp_min) / dlt;
  c.i = std::min(spec_.nrho - 2, std::max(0, static_cast<int>(fi)));
  c.j = std::min(spec_.ntemp - 2, std::max(0, static_cast<int>(fj)));
  c.u = fi - c.i;
  c.v = fj - c.j;
  c.dx = dlr;
  c.dy = dlt;
  return c;
}

EpInterp HelmTable::interpolate(double rho_ye, double temp) const {
  const Cell c = locate(rho_ye, temp);

  // Node coordinates and derivative scales (chain rule log-grid -> unit
  // cell): dQ/du at node i equals dQ/drho * rho_i * ln10 * dlx.
  double rho_n[2], temp_n[2];
  for (int a = 0; a < 2; ++a) {
    rho_n[a] = std::pow(10.0, spec_.log_rho_min + (c.i + a) * c.dx);
    temp_n[a] = std::pow(10.0, spec_.log_temp_min + (c.j + a) * c.dy);
  }

  double h0u[2], h1u[2], h0v[2], h1v[2];
  hermite(c.u, h0u, h1u);
  hermite(c.v, h0v, h1v);
  double d0u[2], d1u[2], d0v[2], d1v[2];
  hermite_deriv(c.u, d0u, d1u);
  hermite_deriv(c.v, d0v, d1v);

  const double rho_eval = rho_ye;
  const double temp_eval = temp;
  const double su_eval = rho_eval * kLn10 * c.dx;   // du -> drho at the point
  const double sv_eval = temp_eval * kLn10 * c.dy;  // dv -> dT

  auto idx = [&](int a, int b) {
    return static_cast<std::size_t>(c.j + b) *
               static_cast<std::size_t>(spec_.nrho) +
           static_cast<std::size_t>(c.i + a);
  };

  // Interpolate one quantity group; returns value and physical partials.
  auto patch = [&](Plane q, Plane qd, Plane qt, Plane qdt, double* out_d,
                   double* out_t) {
    const double* Q = plane_data(q);
    const double* Qd = plane_data(qd);
    const double* Qt = plane_data(qt);
    const double* Qdt = plane_data(qdt);
    double value = 0, du = 0, dv = 0;
    for (int a = 0; a < 2; ++a) {
      const double su = rho_n[a] * kLn10 * c.dx;
      for (int b = 0; b < 2; ++b) {
        const double sv = temp_n[b] * kLn10 * c.dy;
        const std::size_t n = idx(a, b);
        const double qv = Q[n];
        const double qx = Qd[n] * su;
        const double qy = Qt[n] * sv;
        const double qxy = Qdt[n] * su * sv;
        value += h0u[a] * h0v[b] * qv + h1u[a] * h0v[b] * qx +
                 h0u[a] * h1v[b] * qy + h1u[a] * h1v[b] * qxy;
        du += d0u[a] * h0v[b] * qv + d1u[a] * h0v[b] * qx +
              d0u[a] * h1v[b] * qy + d1u[a] * h1v[b] * qxy;
        dv += h0u[a] * d0v[b] * qv + h1u[a] * d0v[b] * qx +
              h0u[a] * d1v[b] * qy + h1u[a] * d1v[b] * qxy;
      }
    }
    if (out_d != nullptr) *out_d = du / su_eval;
    if (out_t != nullptr) *out_t = dv / sv_eval;
    return value;
  };

  EpInterp out;
  out.p = patch(kP, kPd, kPt, kPdt, &out.p_d, &out.p_t);
  out.e = patch(kE, kEd, kEt, kEdt, &out.e_d, &out.e_t);
  out.s = patch(kS, kSd, kSt, kSdt, nullptr, &out.s_t);
  out.eta = patch(kEta, kEtaD, kEtaT, kEtaDt, nullptr, nullptr);
  return out;
}

void HelmTable::trace_interpolate(tlb::Tracer& tracer, double rho_ye,
                                  double temp, bool full) const {
  if (!tracer.enabled()) return;
  const Cell c = locate(rho_ye, temp);
  // interpolate() reads 4 planes per quantity group at the 4 cell corners.
  const std::size_t nplanes = full ? kNumPlanes : kEdt + 1;  // P* and E*
  for (std::size_t plane = 0; plane < nplanes; ++plane) {
    // Fixed synthetic twin of plane_data(plane): same plane/row/corner
    // offsets, placement-invariant base (see tlb::synthetic_scratch).
    const double* base =
        static_cast<const double*>(
            tlb::synthetic_scratch(tlb::kHelmTableTraceSlot)) +
        plane * plane_elems_;
    for (int b = 0; b < 2; ++b) {
      const double* row = base + static_cast<std::size_t>(c.j + b) *
                                     static_cast<std::size_t>(spec_.nrho) +
                          static_cast<std::size_t>(c.i);
      // Two adjacent corners in one touch (contiguous 16 bytes).
      tracer.touch(row, 2 * sizeof(double), false, page_shift_);
    }
  }
  // The Hermite arithmetic per lookup. The Fujitsu compiler did emit SVE
  // for these regular fused multiply-add chains (the paper's EOS region
  // measured ~0.5 SVE instructions/cycle even though the outer EOS loops
  // would not vectorize).
  tracer.compute(280, 260);
}

void HelmTableEos::eval_dens_temp(State& s) const {
  FHP_REQUIRE(s.abar > 0 && s.zbar > 0, "bad composition");
  const double ye = s.zbar / s.abar;
  const EpInterp ep = table_->interpolate(s.rho * ye, s.temp);

  detail::EpPart part;
  part.p = ep.p;
  part.dpdr = ep.p_d * ye;  // d/drho = d/d(rhoYe) * Ye
  part.dpdt = ep.p_t;
  part.e_vol = ep.e;
  part.de_vol_dt = ep.e_t;
  part.s_vol = ep.s;
  part.eta = ep.eta;
  detail::assemble_state(s, part);
}

void HelmTableEos::eval(Mode mode, std::span<State> row) const {
  const double tmin = std::pow(10.0, table_->spec().log_temp_min);
  const double tmax = std::pow(10.0, table_->spec().log_temp_max);
  for (State& s : row) {
    switch (mode) {
      case Mode::kDensTemp:
        eval_dens_temp(s);
        break;
      case Mode::kDensEner:
      case Mode::kDensPres:
        detail::invert_temperature([this](State& st) { eval_dens_temp(st); },
                                   mode, s, tmin, tmax);
        break;
    }
  }
}

void HelmTableEos::trace_eval(tlb::Tracer& tracer, Mode mode,
                              std::span<const State> row) const {
  if (!tracer.enabled()) return;
  // Inversion modes re-interpolate once per Newton iteration; 4 is the
  // observed steady-state count when warm-starting from the previous T.
  // Each iteration evaluates at a *different* temperature, so its 4x4
  // stencil lands on different table rows — with 4 KiB pages that is a
  // fresh set of 32 pages per iteration, the access pattern that
  // overwhelms a 48-entry L1 DTLB.
  const int lookups = mode == Mode::kDensTemp ? 1 : 4;
  static constexpr double kNewtonPath[4] = {1.35, 0.92, 1.08, 1.0};
  // Scratch rows (eosData gathers) live on the ordinary heap: 4 KiB pages
  // in both experiment arms, like FLASH's per-rank work arrays. Modeled
  // at a fixed synthetic address so the stream is identical whichever
  // thread replays it.
  constexpr std::size_t kScratchRows = 10;
  constexpr std::size_t kScratchRowBytes = 64 * sizeof(double);
  const std::uint8_t heap_shift = 12;
  const double tmin = std::pow(10.0, table_->spec().log_temp_min) * 1.001;
  const double tmax = std::pow(10.0, table_->spec().log_temp_max) * 0.999;
  for (const State& s : row) {
    const double ye = s.zbar / s.abar;
    for (int l = 0; l < lookups; ++l) {
      const double t_iter =
          std::clamp(s.temp * kNewtonPath[l], tmin, tmax);
      // Intermediate Newton iterations only read the P/E groups; the
      // final converged evaluation fills the whole state.
      table_->trace_interpolate(tracer, s.rho * ye, t_iter,
                                l == lookups - 1);
    }
    // Mode bookkeeping + ion/radiation terms + Newton update arithmetic.
    tracer.compute(250ull * static_cast<unsigned>(lookups), 0);
  }
  for (std::size_t r = 0; r < kScratchRows; ++r) {
    tracer.touch(tlb::synthetic_scratch(tlb::kEosRowScratchSlot,
                                        r * kScratchRowBytes),
                 kScratchRowBytes, true, heap_shift);
  }
}

}  // namespace fhp::eos
