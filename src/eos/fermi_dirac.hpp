/// \file fermi_dirac.hpp
/// \brief Generalized Fermi–Dirac integrals.
///
/// The degenerate-electron EOS needs the generalized Fermi–Dirac integral
///
///   F_k(eta, beta) = \int_0^inf x^k sqrt(1 + beta x / 2) / (exp(x-eta)+1) dx
///
/// and its partial derivatives with respect to eta and beta, for
/// k = 1/2, 3/2, 5/2. beta = kT / (m_e c^2) is the relativity parameter,
/// eta = mu / kT the degeneracy parameter (chemical potential without rest
/// mass). Evaluation uses composite Gauss–Legendre quadrature with
/// breakpoints that track the Fermi surface at x ~ eta, accurate to
/// ~1e-12 relative over the stellar regime (-50 < eta < 5e4, beta < 1e3).

#pragma once

namespace fhp::eos {

/// F_k(eta, beta). k is the exponent (0.5, 1.5, or 2.5 in practice; any
/// k > -1 works).
[[nodiscard]] double fd_integral(double k, double eta, double beta);

/// dF_k/deta.
[[nodiscard]] double fd_integral_deta(double k, double eta, double beta);

/// dF_k/dbeta.
[[nodiscard]] double fd_integral_dbeta(double k, double eta, double beta);

/// All nine integrals the EOS needs — F_k, dF_k/deta, dF_k/dbeta for
/// k = 1/2, 3/2, 5/2 — fused into a single quadrature pass (one exp()
/// per node instead of nine). This is the production path; the scalar
/// fd_integral* functions are the reference the fused version is tested
/// against.
struct FdSet {
  double f12 = 0, f32 = 0, f52 = 0;
  double f12e = 0, f32e = 0, f52e = 0;
  double f12b = 0, f32b = 0, f52b = 0;
};
[[nodiscard]] FdSet fd_all(double eta, double beta);

}  // namespace fhp::eos
