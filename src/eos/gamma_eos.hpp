/// \file gamma_eos.hpp
/// \brief Ideal gamma-law gas — FLASH's `Gamma` EOS implementation.
///
/// P = rho * N_A * k_B * T / abar,  e = P / ((gamma-1) rho).
/// Used by the Sedov setup (the paper's "3-d Hydro" test) and as the fast
/// reference implementation in tests. All three input modes invert
/// analytically.

#pragma once

#include "eos/eos_types.hpp"

namespace fhp::eos {

/// Ideal gas with constant adiabatic index.
class GammaEos final : public Eos {
 public:
  /// \param gamma adiabatic index (FLASH default 1.6667 for Sedov: 1.4).
  explicit GammaEos(double gamma = 1.4);

  void eval(Mode mode, std::span<State> row) const override;

  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
};

}  // namespace fhp::eos
