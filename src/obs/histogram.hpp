/// \file histogram.hpp
/// \brief Log-scale latency histograms: power-of-2 buckets, mergeable.
///
/// Span latencies range over six decades (a 2 µs per-block EOS pass to a
/// 300 ms remesh), so a linear histogram is either blind or enormous.
/// Histogram buckets by floor(log2(value)): bucket i counts values v with
/// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). 65 buckets cover the full
/// uint64 range in 544 bytes, merging is bucket-wise addition (exact and
/// order-independent, so per-lane histograms merge deterministically),
/// and quantiles interpolate within a bucket — good to a factor of 2,
/// which is what a latency distribution question actually needs.

#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace fhp::obs {

/// A log2-bucketed histogram of non-negative 64-bit samples (span
/// latencies in nanoseconds, in this subsystem). Plain value type: copy,
/// merge, compare freely. Not internally synchronized — each lane owns
/// one, and merges happen on the reader thread after the lanes quiesce.
class Histogram {
 public:
  /// bucket 0: v == 0; bucket i (1..64): 2^(i-1) <= v < 2^i.
  static constexpr int kBuckets = 65;

  void add(std::uint64_t v) noexcept {
    buckets_[std::bit_width(v)] += 1;
    sum_ += v;
    if (count_ == 0 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    ++count_;
  }

  /// Bucket-wise accumulation of \p other into this histogram.
  void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  [[nodiscard]] std::uint64_t bucket_count(int i) const noexcept {
    return (i >= 0 && i < kBuckets) ? buckets_[i] : 0;
  }

  /// Smallest value that lands in bucket \p i (0 for bucket 0).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(int i) noexcept {
    return i <= 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  /// Estimate of the q-quantile (q in [0,1]) by linear interpolation
  /// inside the containing bucket; exact min/max at the ends.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// "n=412 mean=1.2ms p50=0.9ms p90=2.1ms p99=6.7ms max=12.4ms".
  [[nodiscard]] std::string summary() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fhp::obs
