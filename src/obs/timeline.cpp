#include "obs/timeline.hpp"

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <limits>
#include <ostream>
#include <string_view>

#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "support/error.hpp"

namespace fhp::obs {

namespace {

/// Minimal JSON string escape (names are flashhp literals, but a
/// malformed byte must not produce an unloadable trace).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trip-exact double for JSON: the default 6-significant-digit
/// ostream precision can round a clamped quantile past the integer max
/// it was clamped to, breaking the p99 <= max invariant the trace
/// validator holds.
std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Streams the traceEvents array with comma bookkeeping.
class EventWriter {
 public:
  EventWriter(std::ostream& os, std::uint64_t epoch_ns)
      : os_(os), epoch_ns_(epoch_ns) {}

  [[nodiscard]] double us(std::uint64_t t_ns) const {
    return static_cast<double>(t_ns - epoch_ns_) / 1000.0;
  }

  void raw(const std::string& event_json) {
    os_ << (first_ ? "\n  " : ",\n  ") << event_json;
    first_ = false;
  }

  void metadata(const char* what, int tid, std::string_view name) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  what, tid, json_escape(name).c_str());
    raw(buf);
  }

  void span(const SpanRecord& rec, int lane) {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"depth\":%u}}",
                  json_escape(rec.name).c_str(), us(rec.begin_ns),
                  static_cast<double>(rec.end_ns - rec.begin_ns) / 1000.0,
                  lane, rec.depth);
    raw(buf);
  }

  void instant(const Telemetry::StepMark& mark) {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"step %d\",\"cat\":\"step\",\"ph\":\"i\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":0,\"s\":\"p\","
                  "\"args\":{\"step\":%d,\"t\":%.9g,\"dt\":%.9g}}",
                  mark.step, us(mark.t_ns), mark.step, mark.sim_time,
                  mark.dt);
    raw(buf);
  }

  void counter(std::uint64_t t_ns, const char* track, const char* key,
               std::uint64_t value) {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":0,"
                  "\"args\":{\"%s\":%llu}}",
                  track, us(t_ns), key,
                  static_cast<unsigned long long>(value));
    raw(buf);
  }

  void counter_if(std::uint64_t t_ns, const char* track, const char* key,
                  const mem::ProcField& field) {
    if (field.present()) counter(t_ns, track, key, field.value_or());
  }

 private:
  std::ostream& os_;
  std::uint64_t epoch_ns_;
  bool first_ = true;
};

/// Earliest timestamp across spans, marks and samples, so the timeline
/// starts at t=0 regardless of the clock's epoch.
std::uint64_t find_epoch(const Telemetry& telemetry, const Sampler* sampler) {
  std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
  for (int lane = 0; lane < telemetry.lanes(); ++lane) {
    for (const SpanRecord& rec : telemetry.ring(lane).in_order()) {
      epoch = std::min(epoch, rec.begin_ns);
    }
  }
  for (const auto& mark : telemetry.step_marks()) {
    epoch = std::min(epoch, mark.t_ns);
  }
  if (sampler != nullptr) {
    for (const Sample& s : sampler->samples()) {
      epoch = std::min(epoch, s.t_ns);
    }
  }
  return epoch == std::numeric_limits<std::uint64_t>::max() ? 0 : epoch;
}

void write_histograms(std::ostream& os, const Telemetry& telemetry) {
  bool first = true;
  for (const auto& [name, hist] : telemetry.latency_histograms()) {
    os << (first ? "\n      " : ",\n      ") << '"' << json_escape(name)
       << "\": {\"count\":" << hist.count()
       << ",\"mean_ns\":" << json_double(hist.mean())
       << ",\"p50_ns\":" << json_double(hist.quantile(0.5))
       << ",\"p90_ns\":" << json_double(hist.quantile(0.9))
       << ",\"p99_ns\":" << json_double(hist.quantile(0.99))
       << ",\"min_ns\":" << hist.min() << ",\"max_ns\":" << hist.max()
       << ",\"summary\":\"" << json_escape(hist.summary()) << "\"}";
    first = false;
  }
  if (!first) os << "\n    ";
}

}  // namespace

void write_timeline(std::ostream& os, const Telemetry& telemetry,
                    const Sampler* sampler) {
  EventWriter w(os, find_epoch(telemetry, sampler));

  os << "{\"traceEvents\": [";
  w.metadata("process_name", 0, "flashhp");
  for (int lane = 0; lane < telemetry.lanes(); ++lane) {
    w.metadata("thread_name", lane,
               lane == 0 ? std::string("lane 0 (driver)")
                         : "lane " + std::to_string(lane));
  }

  for (int lane = 0; lane < telemetry.lanes(); ++lane) {
    for (const SpanRecord& rec : telemetry.ring(lane).in_order()) {
      w.span(rec, lane);
    }
  }
  for (const auto& mark : telemetry.step_marks()) w.instant(mark);

  if (sampler != nullptr) {
    for (const Sample& s : sampler->samples()) {
      w.counter_if(s.t_ns, "meminfo.AnonHugePages", "bytes",
                   s.meminfo.anon_huge_pages);
      w.counter_if(s.t_ns, "meminfo.HugePages_Free", "pages",
                   s.meminfo.huge_pages_free);
      w.counter_if(s.t_ns, "meminfo.Hugetlb", "bytes", s.meminfo.hugetlb);
      w.counter_if(s.t_ns, "smaps.Rss", "bytes", s.smaps.rss);
      w.counter_if(s.t_ns, "smaps.AnonHugePages", "bytes",
                   s.smaps.anon_huge_pages);
      w.counter_if(s.t_ns, "smaps.huge_total", "bytes",
                   s.smaps.total_huge_bytes());
      w.counter_if(s.t_ns, "vmstat.thp_fault_alloc", "events",
                   s.vmstat.thp_fault_alloc);
      w.counter_if(s.t_ns, "vmstat.thp_fault_fallback", "events",
                   s.vmstat.thp_fault_fallback);
      w.counter_if(s.t_ns, "vmstat.thp_collapse_alloc", "events",
                   s.vmstat.thp_collapse_alloc);
      w.counter_if(s.t_ns, "vmstat.thp_split_page", "events",
                   s.vmstat.thp_split_page);
      if (s.have_counters) {
        w.counter(s.t_ns, "perf.cycles", "count",
                  s.counters[perf::Event::kCycles]);
        w.counter(s.t_ns, "perf.dtlb_misses", "count",
                  s.counters[perf::Event::kDtlbMisses]);
        w.counter(s.t_ns, "perf.bytes_read", "bytes",
                  s.counters[perf::Event::kBytesRead]);
        w.counter(s.t_ns, "perf.bytes_written", "bytes",
                  s.counters[perf::Event::kBytesWritten]);
      }
    }
  }

  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"flashhpSummary\": {"
     << "\n    \"totalSpans\": " << telemetry.total_spans()
     << ",\n    \"droppedSpans\": " << telemetry.dropped_spans()
     << ",\n    \"lanes\": " << telemetry.lanes();
  if (sampler != nullptr) {
    os << ",\n    \"samples\": " << sampler->samples().size()
       << ",\n    \"samplesTaken\": " << sampler->taken()
       << ",\n    \"samplesDropped\": " << sampler->dropped()
       << ",\n    \"sampleErrors\": " << sampler->errors();
  }
  os << ",\n    \"histograms\": {";
  write_histograms(os, telemetry);
  os << "}\n  }\n}\n";
}

void write_timeline_file(const std::string& path, const Telemetry& telemetry,
                         const Sampler* sampler) {
  std::ofstream out(path);
  if (!out) {
    throw SystemError("cannot write timeline '" + path + "'", errno);
  }
  write_timeline(out, telemetry, sampler);
}

std::string csv_path_for(const std::string& timeline_path) {
  const std::string suffix = ".json";
  if (timeline_path.size() > suffix.size() &&
      timeline_path.compare(timeline_path.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
    return timeline_path.substr(0, timeline_path.size() - suffix.size()) +
           ".csv";
  }
  return timeline_path + ".csv";
}

}  // namespace fhp::obs
