/// \file sampler.hpp
/// \brief Background memory/THP sampler: meminfo + smaps_rollup + vmstat
/// + published perf counters, every N ms, into a bounded time-series.
///
/// The paper's methodology is watching /proc *while FLASH runs* — the
/// authors proved (and for GNU/Cray THP, disproved) huge-page backing by
/// observing HugePages_* and AnonHugePages move over the run. Sampler
/// automates that observation: a background thread captures the
/// huge-page state of the system, of this process, and of the THP event
/// machinery on a fixed cadence, timestamped on the same clock as the
/// span tracer so "when did THP kick in" lines up with "what was the
/// solver doing". Samples land in a bounded ring (oldest dropped, drops
/// counted) and export as counter tracks in the timeline JSON plus a CSV.
///
/// Determinism for tests: the clock and every procfs path are
/// injectable, and sample_once() captures synchronously without a
/// thread, so a fake clock plus fixture files yields a bit-stable
/// sample series.
///
/// Thread safety: the sampler thread touches only procfs, its own ring
/// (mutex-guarded) and PerfContext::published() — the mutex-guarded
/// snapshot the driver publishes at step boundaries. It never reads the
/// per-lane counter shards or span rings, so it is race-free against
/// running lanes (the tsan preset runs a sampler-over-parallel-sweep
/// workload to hold this).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mem/meminfo.hpp"
#include "mem/vmstat.hpp"
#include "perf/perf_context.hpp"
#include "support/lane.hpp"

namespace fhp::obs {

/// Sampler knobs. Paths are injectable (fixture procfs for tests); the
/// clock mirrors TelemetryOptions::clock so both series share a timebase.
struct SamplerOptions {
  std::chrono::milliseconds cadence{10};
  std::size_t ring_capacity = 4096;  // samples, not bytes — fhp-lint: allow(page-size-literal)
  std::string meminfo_path = "/proc/meminfo";
  std::string smaps_path = "/proc/self/smaps_rollup";
  std::string vmstat_path = "/proc/vmstat";
  std::function<std::uint64_t()> clock;  ///< ns; null = steady_clock
  perf::PerfContext* perf = nullptr;     ///< published() source (optional)

  /// Options with every procfs path rooted under \p root (which must
  /// mirror the /proc layout: root/meminfo, root/self/smaps_rollup,
  /// root/vmstat) — the fixture pattern tests use.
  [[nodiscard]] static SamplerOptions with_procfs_root(
      const std::string& root);
};

/// One captured time point.
struct Sample {
  std::uint64_t t_ns = 0;
  mem::MeminfoSnapshot meminfo;
  mem::SmapsRollup smaps;
  mem::VmstatSnapshot vmstat;
  perf::CounterSet counters;       ///< last published (zeros if none yet)
  std::uint64_t counter_seq = 0;   ///< publish sequence (0 = none yet)
  bool have_counters = false;      ///< a PerfContext was wired
};

/// The sampler. Construct, start() for the background thread (or drive
/// sample_once() manually), stop(), then read samples()/write_csv().
class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Capture one sample now, on the calling thread. Procfs read errors
  /// are counted (errors()), never thrown — a sampler must not take the
  /// simulation down. Drains published() only — never the lane shards —
  /// so it must not run as a region lane (FHP_EXCLUDES_REGION).
  void sample_once() FHP_EXCLUDES_REGION;

  /// Launch the background thread (no-op if already running).
  void start();

  /// Stop and join the background thread (no-op if not running; the
  /// destructor calls it). Samples remain readable afterwards.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Copy of the retained samples, oldest first.
  [[nodiscard]] std::vector<Sample> samples() const FHP_EXCLUDES_REGION;

  /// Total samples ever captured (retained + dropped).
  [[nodiscard]] std::uint64_t taken() const;

  /// Samples lost to ring overwrite (oldest-dropped, reported).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Procfs captures that failed (missing file, parse trouble).
  [[nodiscard]] std::uint64_t errors() const;

  [[nodiscard]] const SamplerOptions& options() const noexcept {
    return options_;
  }

  /// Dump the retained samples as CSV (header + one row per sample;
  /// absent /proc fields are empty cells, not zeros).
  void write_csv(std::ostream& os) const FHP_EXCLUDES_REGION;

 private:
  void thread_main();

  SamplerOptions options_;
  std::function<std::uint64_t()> clock_;

  mutable std::mutex mutex_;  // guards ring_ + counts; cv waits on it
  std::condition_variable cv_;
  std::deque<Sample> ring_;
  std::uint64_t taken_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t errors_ = 0;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace fhp::obs
