/// \file timeline.hpp
/// \brief chrome://tracing / Perfetto JSON export of a telemetry run.
///
/// Emits the JSON object form of the Chrome Trace Event format
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
/// spans as complete ("X") events on one track per lane, step marks as
/// instant ("i") events, sampler series as counter ("C") tracks, and the
/// per-span latency histograms under a "flashhpSummary" top-level key
/// (legal: trace viewers ignore unknown keys). Load the file in
/// ui.perfetto.dev or chrome://tracing and the whole Sedov run — what
/// each lane ran, when THP adoption moved, how the counters advanced —
/// is one scrollable timeline.
///
/// Timestamps are normalized so the earliest event sits at t=0; Chrome
/// trace "ts"/"dur" are microseconds (fractional allowed — span clocks
/// are ns).

#pragma once

#include <iosfwd>
#include <string>

#include "support/lane.hpp"

namespace fhp::obs {

class Sampler;
class Telemetry;

/// Write the timeline JSON for \p telemetry (and \p sampler's counter
/// tracks, when given). Read side: driver thread, after lanes quiesce
/// and the sampler is stopped.
void write_timeline(std::ostream& os, const Telemetry& telemetry,
                    const Sampler* sampler = nullptr) FHP_EXCLUDES_REGION;

/// write_timeline to \p path; throws fhp::SystemError when the file
/// cannot be opened.
void write_timeline_file(const std::string& path, const Telemetry& telemetry,
                         const Sampler* sampler = nullptr)
    FHP_EXCLUDES_REGION;

/// Derive the sampler CSV path next to a timeline path:
/// "timeline.json" -> "timeline.csv", "trace" -> "trace.csv".
[[nodiscard]] std::string csv_path_for(const std::string& timeline_path);

}  // namespace fhp::obs
