/// \file span.hpp
/// \brief Span records and the per-lane ring buffers they land in.
///
/// A span is one timed scope of work — a driver step, a hydro sweep, one
/// block's EOS pass — recorded as {name, begin, end, depth} when the
/// scope closes. Rings are strictly single-writer: lane `l`'s ring is
/// written only by the thread running as `par::lane() == l` inside a
/// region (or the driver thread, which is lane 0, outside one), so the
/// hot path is an unsynchronized slot store plus a counter increment —
/// no atomics, no locks, and never a block: when the ring is full the
/// oldest record is overwritten and the drop is visible as
/// `pushed() - capacity()`. Readers (the timeline exporter, histogram
/// builder) run on the driver thread after the lanes have quiesced; the
/// worker pool's completion handshake provides the happens-before edge,
/// exactly as for perf::PerfContext's counter shards.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/contracts.hpp"
#include "support/lane.hpp"

namespace fhp::obs {

/// One closed span. `name` must point at static-storage text (the
/// FHP_TRACE_SPAN macro passes string literals) — rings store the
/// pointer, not a copy, so the hot path never allocates.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;  ///< clock value at scope entry
  std::uint64_t end_ns = 0;    ///< clock value at scope exit
  std::uint16_t depth = 0;     ///< nesting depth on the recording thread
};

/// Fixed-capacity overwrite-oldest ring of SpanRecords (single writer;
/// see file comment for the synchronization contract).
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  /// Record one span; overwrites the oldest record when full. One slot
  /// store + one increment — never blocks, never allocates. Requires the
  /// per-lane writer role (support/lane.hpp): only the thread running as
  /// this ring's lane may push.
  FHP_NO_ALLOC void push(const SpanRecord& rec) noexcept
      FHP_REQUIRES_REGION {
    slots_[static_cast<std::size_t>(pushed_ % slots_.size())] = rec;
    ++pushed_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Total spans ever pushed (retained + dropped).
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }

  /// Spans lost to overwrite (reported, per the never-block contract).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return pushed_ > slots_.size() ? pushed_ - slots_.size() : 0;
  }

  /// Number of records currently retained.
  [[nodiscard]] std::size_t size() const noexcept {
    return pushed_ < slots_.size() ? static_cast<std::size_t>(pushed_)
                                   : slots_.size();
  }

  /// Retained records, oldest first. Reader-side only (after quiesce).
  [[nodiscard]] std::vector<SpanRecord> in_order() const
      FHP_EXCLUDES_REGION {
    std::vector<SpanRecord> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = pushed_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(
          slots_[static_cast<std::size_t>((first + i) % slots_.size())]);
    }
    return out;
  }

 private:
  std::vector<SpanRecord> slots_;
  std::uint64_t pushed_ = 0;
};

}  // namespace fhp::obs
