#include "obs/histogram.hpp"

#include <cstdio>

namespace fhp::obs {

namespace {

/// Render nanoseconds with a unit a human scans quickly.
std::string format_ns(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

}  // namespace

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);

  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [floor, 2*floor) — clamped to the observed
      // min/max so tiny histograms do not report values never seen.
      const auto lo = static_cast<double>(bucket_floor(i));
      const double hi = i == 0 ? 0.0 : lo * 2.0;
      const double frac = buckets_[i] == 0
                              ? 0.0
                              : (target - static_cast<double>(seen)) /
                                    static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      return v;
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::summary() const {
  if (count_ == 0) return "n=0";
  char buf[192];
  std::snprintf(buf, sizeof buf, "n=%llu mean=%s p50=%s p90=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                format_ns(mean()).c_str(), format_ns(quantile(0.5)).c_str(),
                format_ns(quantile(0.9)).c_str(),
                format_ns(quantile(0.99)).c_str(),
                format_ns(static_cast<double>(max_)).c_str());
  return buf;
}

}  // namespace fhp::obs
