#include "obs/sampler.hpp"

#include <chrono>
#include <ostream>

#include "support/error.hpp"

namespace fhp::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void csv_field(std::ostream& os, const mem::ProcField& f) {
  // Absent fields are empty cells: "0" would claim an observation the
  // kernel never made (the 0-vs-absent ambiguity this layer removes).
  if (f.present()) os << f.value_or();
  os << ',';
}

}  // namespace

SamplerOptions SamplerOptions::with_procfs_root(const std::string& root) {
  SamplerOptions o;
  o.meminfo_path = root + "/meminfo";
  o.smaps_path = root + "/self/smaps_rollup";
  o.vmstat_path = root + "/vmstat";
  return o;
}

Sampler::Sampler(SamplerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock ? options_.clock : steady_now_ns) {
  FHP_REQUIRE(options_.cadence.count() > 0,
              "Sampler cadence must be positive");
  FHP_REQUIRE(options_.ring_capacity > 0,
              "Sampler ring capacity must be positive");
}

Sampler::~Sampler() { stop(); }

void Sampler::sample_once() {
  Sample s;
  s.t_ns = clock_();
  bool failed = false;
  // Procfs reads happen outside the ring lock: a slow /proc read must
  // not block a concurrent samples() reader.
  try {
    s.meminfo = mem::MeminfoSnapshot::capture(options_.meminfo_path);
  } catch (const Error&) {
    failed = true;
  }
  try {
    s.smaps = mem::SmapsRollup::capture(options_.smaps_path);
  } catch (const Error&) {
    failed = true;
  }
  try {
    s.vmstat = mem::VmstatSnapshot::capture(options_.vmstat_path);
  } catch (const Error&) {
    failed = true;
  }
  if (options_.perf != nullptr) {
    const auto published = options_.perf->published();
    s.counters = published.counters;
    s.counter_seq = published.seq;
    s.have_counters = true;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (failed) ++errors_;
  if (ring_.size() >= options_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(s));
  ++taken_;
}

void Sampler::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { thread_main(); });
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool Sampler::running() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void Sampler::thread_main() {
  // Sample immediately so even a short run gets a first data point,
  // then on every cadence tick until stop() wakes us.
  for (;;) {
    sample_once();
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, options_.cadence,
                     [this] { return stop_requested_; })) {
      return;
    }
  }
}

std::vector<Sample> Sampler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t Sampler::taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

std::uint64_t Sampler::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t Sampler::errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

void Sampler::write_csv(std::ostream& os) const {
  os << "t_ns,"
     << "meminfo_anon_huge_pages,meminfo_file_huge_pages,"
     << "meminfo_huge_pages_total,meminfo_huge_pages_free,meminfo_hugetlb,"
     << "meminfo_mem_available,"
     << "smaps_rss,smaps_anon_huge_pages,smaps_file_pmd_mapped,"
     << "smaps_shmem_pmd_mapped,smaps_private_hugetlb,smaps_shared_hugetlb,"
     << "thp_fault_alloc,thp_fault_fallback,thp_collapse_alloc,"
     << "thp_split_page,"
     << "perf_cycles,perf_dtlb_misses,perf_bytes_read,perf_bytes_written,"
     << "perf_seq\n";
  for (const Sample& s : samples()) {
    os << s.t_ns << ',';
    csv_field(os, s.meminfo.anon_huge_pages);
    csv_field(os, s.meminfo.file_huge_pages);
    csv_field(os, s.meminfo.huge_pages_total);
    csv_field(os, s.meminfo.huge_pages_free);
    csv_field(os, s.meminfo.hugetlb);
    csv_field(os, s.meminfo.mem_available);
    csv_field(os, s.smaps.rss);
    csv_field(os, s.smaps.anon_huge_pages);
    csv_field(os, s.smaps.file_pmd_mapped);
    csv_field(os, s.smaps.shmem_pmd_mapped);
    csv_field(os, s.smaps.private_hugetlb);
    csv_field(os, s.smaps.shared_hugetlb);
    csv_field(os, s.vmstat.thp_fault_alloc);
    csv_field(os, s.vmstat.thp_fault_fallback);
    csv_field(os, s.vmstat.thp_collapse_alloc);
    csv_field(os, s.vmstat.thp_split_page);
    if (s.have_counters) {
      os << s.counters[perf::Event::kCycles] << ','
         << s.counters[perf::Event::kDtlbMisses] << ','
         << s.counters[perf::Event::kBytesRead] << ','
         << s.counters[perf::Event::kBytesWritten] << ',' << s.counter_seq;
    } else {
      os << ",,,,";
    }
    os << '\n';
  }
}

}  // namespace fhp::obs
