/// \file telemetry.hpp
/// \brief The obs::Telemetry context and the FHP_TRACE_SPAN macro.
///
/// Telemetry is to observability what perf::PerfContext is to counters:
/// an explicit object you construct alongside the PerfContext, thread
/// through sim::DriverUnits, and read results from — per-lane span rings,
/// per-name latency histograms, step marks — before exporting the whole
/// run as a chrome://tracing / Perfetto timeline (obs/timeline.hpp).
///
/// One Telemetry at a time may be *installed* as the ambient span sink.
/// The sink slot itself lives one layer down, in support/trace.hpp —
/// FHP_TRACE_SPAN and the SpanScope that physics kernels use consult the
/// support-layer facade, so mesh/hydro/sim never include this module
/// (the module DAG puts obs on top; tools/fhp_analyze.py enforces it).
/// Telemetry is the facade's in-tree trace::Sink implementation. The
/// disabled path is the design's contract: with nothing installed a span
/// scope is one relaxed atomic load and a branch — no clock read, no
/// allocation, no syscall — so an untraced run pays nothing on the
/// block-sweep hot path (tests/test_obs.cpp holds this with an
/// allocation-counting guard).
///
/// Threading contract (mirrors perf_context.hpp): spans may be recorded
/// by the driver thread and by pool lanes inside a parallel region —
/// each writes only its own lane's ring. install()/uninstall() and all
/// read-side methods (rings, histograms, export) are driver-thread-only,
/// outside any region. Background threads (the obs::Sampler) must not
/// record spans.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "par/parallel.hpp"
#include "support/trace.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::rt {
class Runtime;  // rt/runtime.hpp — per-runtime install target
}  // namespace fhp::rt

namespace fhp::obs {

class Telemetry;

namespace detail {
/// The installed Telemetry (null = none). Mirrors the support-layer
/// trace sink slot but with the concrete type, so `Telemetry::current()`
/// needs no downcast.
extern std::atomic<Telemetry*> g_current;
}  // namespace detail

/// Construction-time knobs. The defaults trace a full Sedov run (~1e5
/// spans) in ~512 KiB per lane.
struct TelemetryOptions {
  /// Span records retained per lane before oldest-dropped kicks in.
  std::size_t ring_capacity = std::size_t{1} << 14;
  /// Lane rings to allocate; 0 means par::threads() at construction.
  /// Spans from lanes beyond this count are counted, not stored.
  int lanes = 0;
  /// Timestamp source in nanoseconds; null = steady_clock. Injectable so
  /// tests drive deterministic timelines.
  std::function<std::uint64_t()> clock;
};

/// The observability context: owns the per-lane span rings and the step
/// marks, builds per-name latency histograms, and (while installed) is
/// the trace::Sink behind FHP_TRACE_SPAN.
class Telemetry final : public trace::Sink {
 public:
  explicit Telemetry(TelemetryOptions options = {});
  ~Telemetry() override;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Publish this context as the ambient FHP_TRACE_SPAN sink. Throws
  /// fhp::ConfigError if another sink is already installed. This is the
  /// process-wide legacy path; multi-tenant code installs per runtime.
  void install() FHP_EXCLUDES_REGION;

  /// Publish this context as \p runtime's span sink: spans recorded on
  /// the runtime's arena lanes — and on the driver thread inside a
  /// Driver step — route here instead of the ambient slot, so
  /// interleaved runtimes keep separate timelines. Any number of
  /// runtimes may each carry their own Telemetry this way (the ambient
  /// slot stays free). Size `TelemetryOptions::lanes` to the runtime's
  /// lane count — the 0 default sizes for `par::threads()`, which only
  /// matches the process runtime. Throws fhp::ConfigError if \p runtime
  /// already has a sink. The runtime must outlive this Telemetry (or
  /// uninstall() first).
  void install(rt::Runtime& runtime) FHP_EXCLUDES_REGION;

  /// Withdraw from the ambient slot and/or the bound runtime
  /// (idempotent; the destructor calls it). Only legal when no region is
  /// in flight and no span is open.
  void uninstall() noexcept FHP_EXCLUDES_REGION;

  [[nodiscard]] bool installed() const noexcept {
    return detail::g_current.load(std::memory_order_relaxed) == this;
  }

  /// The ambient installed context, or null when tracing is disabled.
  [[nodiscard]] static Telemetry* current() noexcept {
    return detail::g_current.load(std::memory_order_acquire);
  }

  /// Current timestamp from the injected clock.
  [[nodiscard]] std::uint64_t now_ns() const override { return clock_(); }

  /// Record one closed span against \p lane's ring (hot path; requires
  /// the per-lane writer role — the caller must be the thread running as
  /// that lane). Lanes beyond the ring count are tallied as dropped.
  FHP_NO_ALLOC void record(int lane, const SpanRecord& rec) noexcept
      FHP_REQUIRES_REGION {
    if (lane >= 0 && lane < static_cast<int>(rings_.size())) {
      rings_[static_cast<std::size_t>(lane)].push(rec);
    } else {
      overflow_drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// trace::Sink hot path: a SpanScope closed on lane \p lane. Defined
  /// out of line — it asserts the writer role before forwarding to
  /// record() (the recording thread *is* that lane, by construction).
  void record_span(int lane, const char* name, std::uint64_t begin_ns,
                   std::uint64_t end_ns, std::uint16_t depth) noexcept
      override;

  /// Annotate the timeline with a completed driver step (driver thread
  /// only; rendered as instant events carrying step/t/dt).
  struct StepMark {
    int step = 0;
    std::uint64_t t_ns = 0;
    double sim_time = 0.0;
    double dt = 0.0;
  };
  void mark_step(int step, double sim_time, double dt) override;

  // ---- read side: driver thread, after lanes quiesce -----------------
  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(rings_.size());
  }
  [[nodiscard]] const SpanRing& ring(int lane) const FHP_EXCLUDES_REGION;
  [[nodiscard]] const std::vector<StepMark>& step_marks() const noexcept {
    return step_marks_;
  }

  /// Spans recorded over all lanes (retained + dropped).
  [[nodiscard]] std::uint64_t total_spans() const noexcept
      FHP_EXCLUDES_REGION;

  /// Spans lost to ring overwrite or out-of-range lanes.
  [[nodiscard]] std::uint64_t dropped_spans() const noexcept
      FHP_EXCLUDES_REGION;

  /// Per-span-name latency histograms (end - begin, ns), merged across
  /// every lane's retained records.
  [[nodiscard]] std::map<std::string, Histogram, std::less<>>
  latency_histograms() const FHP_EXCLUDES_REGION;

 private:
  std::vector<SpanRing> rings_;
  std::vector<StepMark> step_marks_;
  std::function<std::uint64_t()> clock_;
  std::atomic<std::uint64_t> overflow_drops_{0};
  rt::Runtime* runtime_ = nullptr;  ///< per-runtime install target
};

/// Compat alias: the RAII span scope moved to support/trace.hpp with the
/// FHP_TRACE_SPAN macro (kernels below the obs layer use it from there).
using SpanScope = ::fhp::trace::SpanScope;

/// Environment variable naming the timeline output path ("" = disabled).
inline constexpr const char* kTimelineEnvVar = "FLASHHP_TELEMETRY";
/// Environment variable overriding the sampler cadence in milliseconds.
inline constexpr const char* kSampleMsEnvVar = "FLASHHP_SAMPLE_MS";

/// FLASHHP_TELEMETRY's value, or "" when unset (telemetry off).
[[nodiscard]] std::string timeline_from_environment();

/// FLASHHP_SAMPLE_MS as a positive integer; \p fallback when unset.
/// Throws fhp::ConfigError on a non-positive or non-numeric value.
[[nodiscard]] int sample_ms_from_environment(int fallback);

/// Registers `obs.timeline` (default: FLASHHP_TELEMETRY) and
/// `obs.sample_ms` (default: FLASHHP_SAMPLE_MS or 10).
void declare_runtime_params(RuntimeParams& params);

}  // namespace fhp::obs
