#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdlib>

#include "rt/runtime.hpp"
#include "support/error.hpp"
#include "support/runtime_params.hpp"

namespace fhp::obs {

namespace detail {

std::atomic<Telemetry*> g_current{nullptr};

}  // namespace detail

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Telemetry::Telemetry(TelemetryOptions options)
    : clock_(options.clock ? std::move(options.clock) : steady_now_ns) {
  const int lanes = options.lanes > 0 ? options.lanes : par::threads();
  rings_.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) rings_.emplace_back(options.ring_capacity);
}

Telemetry::~Telemetry() { uninstall(); }

void Telemetry::install() {
  Telemetry* expected = nullptr;
  if (!detail::g_current.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel)) {
    throw ConfigError(
        "obs::Telemetry::install: another Telemetry is already installed");
  }
  if (!trace::try_install(this)) {
    // Some non-Telemetry sink occupies the support-layer slot.
    detail::g_current.store(nullptr, std::memory_order_release);
    throw ConfigError(
        "obs::Telemetry::install: another trace sink is already installed");
  }
}

void Telemetry::install(rt::Runtime& runtime) {
  if (runtime.trace_sink() != nullptr) {
    throw ConfigError(
        "obs::Telemetry::install: the runtime already has a trace sink");
  }
  runtime.set_trace_sink(this);
  runtime_ = &runtime;
}

void Telemetry::uninstall() noexcept {
  if (runtime_ != nullptr) {
    if (runtime_->trace_sink() == this) runtime_->set_trace_sink(nullptr);
    runtime_ = nullptr;
  }
  trace::uninstall(this);
  Telemetry* expected = this;
  detail::g_current.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
}

void Telemetry::record_span(int lane, const char* name,
                            std::uint64_t begin_ns, std::uint64_t end_ns,
                            std::uint16_t depth) noexcept {
  // Writer-role witness: a SpanScope destructs on the thread that opened
  // it and passes that thread's own lane_id(), so the caller is by
  // construction the single writer of lane's ring — whether it is a pool
  // lane inside a region or the driver thread (lane 0) between regions.
  RegionWitness witness;
  record(lane, {name, begin_ns, end_ns, depth});
}

void Telemetry::mark_step(int step, double sim_time, double dt) {
  FHP_REQUIRE(!par::region_active(),
              "Telemetry::mark_step: only between parallel regions");
  step_marks_.push_back({step, now_ns(), sim_time, dt});
}

const SpanRing& Telemetry::ring(int lane) const {
  FHP_REQUIRE(lane >= 0 && lane < lanes(), "Telemetry::ring: bad lane");
  return rings_[static_cast<std::size_t>(lane)];
}

std::uint64_t Telemetry::total_spans() const noexcept {
  std::uint64_t n = overflow_drops_.load(std::memory_order_relaxed);
  for (const SpanRing& ring : rings_) n += ring.pushed();
  return n;
}

std::uint64_t Telemetry::dropped_spans() const noexcept {
  std::uint64_t n = overflow_drops_.load(std::memory_order_relaxed);
  for (const SpanRing& ring : rings_) n += ring.dropped();
  return n;
}

std::map<std::string, Histogram, std::less<>> Telemetry::latency_histograms()
    const {
  FHP_REQUIRE(!par::region_active(),
              "Telemetry::latency_histograms: lanes must be quiescent");
  std::map<std::string, Histogram, std::less<>> out;
  for (const SpanRing& ring : rings_) {
    for (const SpanRecord& rec : ring.in_order()) {
      out[rec.name].add(rec.end_ns - rec.begin_ns);
    }
  }
  return out;
}

std::string timeline_from_environment() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once at telemetry
  // setup, before any worker threads exist; nothing calls setenv.
  const char* raw = std::getenv(kTimelineEnvVar);
  return raw == nullptr ? std::string() : std::string(raw);
}

int sample_ms_from_environment(int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once at sampler
  // setup, before any worker threads exist; nothing calls setenv.
  const char* raw = std::getenv(kSampleMsEnvVar);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1) {
    throw ConfigError(std::string(kSampleMsEnvVar) + "='" + raw +
                      "': expected a positive sampler cadence in ms");
  }
  return static_cast<int>(value);
}

void declare_runtime_params(RuntimeParams& params) {
  params.declare_string("obs.timeline", timeline_from_environment(),
                        "chrome://tracing timeline output path "
                        "(FLASHHP_TELEMETRY; empty = telemetry off)");
  params.declare_int("obs.sample_ms", sample_ms_from_environment(10),
                     "background memory-sampler cadence in ms "
                     "(FLASHHP_SAMPLE_MS)");
}

}  // namespace fhp::obs
