#include "mem/mapped_region.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "mem/meminfo.hpp"
#include "mem/page_size.hpp"
#include "mem/thp.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

#ifndef MAP_HUGE_SHIFT
#define MAP_HUGE_SHIFT 26
#endif
#ifndef MAP_HUGETLB
#define MAP_HUGETLB 0x40000
#endif

namespace fhp::mem {

std::string_view to_string(Backing backing) noexcept {
  switch (backing) {
    case Backing::kSmallPages: return "small-pages";
    case Backing::kThp: return "thp";
    case Backing::kHugetlbfs: return "hugetlbfs";
  }
  return "?";
}

namespace {

void* try_mmap(std::size_t bytes, int extra_flags) noexcept {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | extra_flags, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
}

/// Pick a hugetlb pool size for \p bytes: the caller's preference if that
/// pool exists and can cover the request, else the largest pool page
/// <= bytes (so a 40 MiB request does not burn a 512 MiB page), else the
/// smallest pool available. Pools whose free pages cannot cover the
/// rounded-up request are skipped: MAP_HUGETLB against an exhausted pool
/// is a doomed syscall, and burning it would turn "the pool ran dry" into
/// a silent THP fallback instead of a logged decision.
std::size_t choose_hugetlb_page(std::size_t bytes, std::size_t preferred) {
  const auto pools = hugetlb_pools();
  if (pools.empty()) return 0;
  const auto can_satisfy = [bytes](const HugetlbPool& p) {
    return p.free_hugepages >= round_up(bytes, p.page_bytes) / p.page_bytes;
  };
  if (preferred != 0) {
    for (const auto& p : pools) {
      if (p.page_bytes != preferred) continue;
      if (can_satisfy(p)) return preferred;
      FHP_LOG(kInfo) << "hugetlb pool " << format_bytes(p.page_bytes)
                     << " cannot cover " << format_bytes(bytes) << " ("
                     << p.free_hugepages << '/' << p.nr_hugepages
                     << " pages free); falling back";
      return 0;
    }
    return 0;  // explicit preference not configured -> let caller fall back
  }
  std::size_t best = 0;
  for (const auto& p : pools) {
    if (!can_satisfy(p)) continue;
    if (p.page_bytes <= bytes || best == 0) best = p.page_bytes;
  }
  if (best == 0) {
    FHP_LOG(kInfo) << "no hugetlb pool has enough free pages for "
                   << format_bytes(bytes) << "; falling back";
  }
  return best;
}

}  // namespace

MappedRegion::MappedRegion(const MapRequest& request) {
  FHP_PRECONDITION(request.bytes > 0, "cannot map zero bytes");
  FHP_PRECONDITION(request.hugetlb_page == 0 || is_pow2(request.hugetlb_page),
                   "hugetlb page preference must be a power of two");
  requested_ = request.policy;
  const std::size_t base = base_page_size();

  // --- Explicit hugetlbfs path -------------------------------------------
  if (request.policy == HugePolicy::kHugetlbfs) {
    const std::size_t hp =
        choose_hugetlb_page(request.bytes, request.hugetlb_page);
    if (hp != 0) {
      const std::size_t len = round_up(request.bytes, hp);
      const int flags =
          MAP_HUGETLB |
          static_cast<int>(log2_pow2(hp) << MAP_HUGE_SHIFT);
      if (void* p = try_mmap(len, flags)) {
        addr_ = p;
        size_ = len;
        page_bytes_ = hp;
        backing_ = Backing::kHugetlbfs;
        if (request.prefault) prefault();
        return;
      }
      // Capture errno before the log stream runs: format_bytes and the
      // stream machinery may make calls that clobber it.
      const int err = errno;
      FHP_LOG(kInfo) << "MAP_HUGETLB(" << format_bytes(hp)
                     << ") failed (errno=" << err
                     << "); falling back to THP";
    } else {
      FHP_LOG(kInfo) << "no hugetlb pool can back "
                     << format_bytes(request.bytes)
                     << "; falling back to THP";
    }
  }

  // --- THP path (also the hugetlbfs fallback) ---------------------------
  if (request.policy == HugePolicy::kThp ||
      request.policy == HugePolicy::kHugetlbfs) {
    const std::size_t pmd = thp_pmd_size().value_or(kPage2M);
    // Over-allocate so we can hand back a PMD-aligned region; an unaligned
    // region can never be promoted to huge pages.
    const std::size_t len = round_up(request.bytes, pmd);
    const std::size_t padded = len + pmd;
    if (void* raw = try_mmap(padded, 0)) {
      auto addr = reinterpret_cast<std::uintptr_t>(raw);
      const std::uintptr_t aligned = (addr + pmd - 1) & ~(pmd - 1);
      // Trim the unaligned head and surplus tail.
      if (aligned > addr) {
        ::munmap(raw, aligned - addr);
      }
      const std::uintptr_t end = addr + padded;
      const std::uintptr_t keep_end = aligned + len;
      if (end > keep_end) {
        ::munmap(reinterpret_cast<void*>(keep_end), end - keep_end);
      }
      addr_ = reinterpret_cast<void*>(aligned);
      size_ = len;
      page_bytes_ = pmd;
      backing_ = Backing::kThp;
      if (!advise_huge(addr_, size_)) {
        const int err = errno;
        FHP_LOG(kDebug) << "madvise(MADV_HUGEPAGE) rejected (errno=" << err
                        << "); region stays THP-eligible only if policy is "
                           "'always'";
      }
      if (request.prefault) prefault();
      return;
    }
    // Even plain mmap failed at the padded size; fall through to base pages
    // at the unpadded size (the padded request may simply not fit).
  }

  // --- Base-page path ----------------------------------------------------
  const std::size_t len = round_up(request.bytes, base);
  void* p = try_mmap(len, 0);
  if (p == nullptr) {
    // errno first: the string concatenation below allocates and may
    // clobber it before SystemError reads its second argument.
    const int err = errno;
    throw SystemError(
        "mmap of " + format_bytes(len) + " anonymous memory failed", err);
  }
  addr_ = p;
  size_ = len;
  page_bytes_ = base;
  backing_ = Backing::kSmallPages;
  // Keep the no-huge-pages arm honest even under THP policy `always`.
  if (!advise_no_huge(addr_, size_)) {
    const int err = errno;
    FHP_LOG(kDebug) << "madvise(MADV_NOHUGEPAGE) rejected (errno=" << err
                    << ')';
  }
  if (request.prefault) prefault();
}

MappedRegion::~MappedRegion() { reset(); }

MappedRegion::MappedRegion(MappedRegion&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      page_bytes_(std::exchange(other.page_bytes_, 0)),
      backing_(std::exchange(other.backing_, Backing::kSmallPages)),
      requested_(std::exchange(other.requested_, HugePolicy::kNone)) {}

MappedRegion& MappedRegion::operator=(MappedRegion&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    page_bytes_ = std::exchange(other.page_bytes_, 0);
    backing_ = std::exchange(other.backing_, Backing::kSmallPages);
    requested_ = std::exchange(other.requested_, HugePolicy::kNone);
  }
  return *this;
}

void MappedRegion::prefault() noexcept {
  if (addr_ == nullptr) return;
  // Write one byte per backing page. volatile prevents the compiler from
  // eliding the stores.
  volatile char* p = static_cast<char*>(addr_);
  const std::size_t step = page_bytes_ != 0 ? page_bytes_ : base_page_size();
  // Touch at base-page granularity for THP regions: promotion happens per
  // PMD range at fault, but faulting only one byte per 2 MiB leaves the
  // rest unpopulated if promotion was declined.
  const std::size_t touch = backing_ == Backing::kHugetlbfs
                                ? step
                                : base_page_size();
  for (std::size_t off = 0; off < size_; off += touch) {
    // Write back the byte we read: a write access populates the page
    // without altering the zero-filled contents.
    p[off] = p[off];
  }
}

std::uint64_t MappedRegion::resident_huge_bytes() const {
  if (addr_ == nullptr) return 0;
  if (backing_ == Backing::kHugetlbfs) return size_;
  return range_huge_bytes(addr_, size_);
}

void MappedRegion::reset() noexcept {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
  // Restore the full default-constructed state: a reset (or moved-from)
  // region must not keep reporting the old backing()/requested_policy()
  // through the verification API.
  addr_ = nullptr;
  size_ = 0;
  page_bytes_ = 0;
  backing_ = Backing::kSmallPages;
  requested_ = HugePolicy::kNone;
}

std::string MappedRegion::describe() const {
  std::ostringstream os;
  if (!valid()) return "<unmapped>";
  os << format_bytes(size_) << ' ' << to_string(backing_) << '('
     << format_bytes(page_bytes_) << " pages) @" << addr_;
  return os.str();
}

}  // namespace fhp::mem
