/// \file vmstat.hpp
/// \brief /proc/vmstat THP event counters.
///
/// /proc/meminfo answers "how much is on huge pages *now*";
/// /proc/vmstat answers "what has the THP machinery been *doing*":
/// thp_fault_alloc counts huge pages allocated at fault time,
/// thp_fault_fallback counts faults that wanted a huge page and got base
/// pages (the GNU/Cray failure mode the paper observed, as a counter),
/// thp_collapse_alloc counts khugepaged promotions of existing base-page
/// ranges, and thp_split_page counts demotions. The obs::Sampler records
/// these every tick, which is how "when did THP kick in" becomes a
/// timeline track instead of a guess.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "mem/procfs.hpp"

namespace fhp::mem {

/// The THP event counters of /proc/vmstat (monotonic since boot, in
/// events — pages, for the alloc/split counters). All optional: kernels
/// built without CONFIG_TRANSPARENT_HUGEPAGE report none of them.
struct VmstatSnapshot {
  ProcField thp_fault_alloc;     ///< huge pages allocated at fault
  ProcField thp_fault_fallback;  ///< huge-page faults that fell back
  ProcField thp_collapse_alloc;  ///< khugepaged collapses
  ProcField thp_split_page;      ///< huge pages split back to base pages
  ProcField pgfault;             ///< total page faults (rate context)

  /// Capture from /proc/vmstat (or another file, for tests) — the same
  /// injectable-path pattern as SmapsRollup::capture.
  static VmstatSnapshot capture(const std::string& path = "/proc/vmstat");

  /// Parse from vmstat-format "name value" text (fixture-friendly).
  static VmstatSnapshot parse(std::string_view text);

  /// True if this kernel exposes THP event accounting at all.
  [[nodiscard]] bool thp_accounting_present() const noexcept {
    return thp_fault_alloc.present() || thp_collapse_alloc.present();
  }

  /// Signed per-counter movement since \p earlier (absent fields move 0).
  struct Delta {
    std::int64_t thp_fault_alloc = 0;
    std::int64_t thp_fault_fallback = 0;
    std::int64_t thp_collapse_alloc = 0;
    std::int64_t thp_split_page = 0;
  };
  [[nodiscard]] Delta since(const VmstatSnapshot& earlier) const;

  /// One-line human-readable summary ("n/a" without THP accounting).
  [[nodiscard]] std::string summary() const;
};

}  // namespace fhp::mem
