#include "mem/hugeadm.hpp"

#include <fstream>

#include "mem/page_size.hpp"
#include "support/string_util.hpp"
#include "support/log.hpp"

namespace fhp::mem {

namespace {
std::string pool_path(std::size_t page_bytes, const std::string& root) {
  return root + "/hugepages-" + std::to_string(page_bytes >> 10) +
         "kB/nr_hugepages";
}
}  // namespace

std::optional<std::size_t> ensure_hugetlb_pool(std::size_t page_bytes,
                                               std::size_t min_pages,
                                               const std::string& sysfs_root) {
  const std::string path = pool_path(page_bytes, sysfs_root);
  std::size_t current = 0;
  {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    in >> current;
    if (!in) return std::nullopt;
  }
  if (current >= min_pages) return current;

  {
    std::ofstream out(path);
    if (!out) {
      FHP_LOG(kDebug) << "cannot write " << path
                      << " (not privileged?); pool stays at " << current;
      return current;
    }
    out << min_pages;
    if (!out) return current;
  }
  std::ifstream in(path);
  std::size_t achieved = 0;
  in >> achieved;
  if (achieved < min_pages) {
    FHP_LOG(kWarn) << "hugetlb pool " << format_bytes(page_bytes)
                   << ": requested " << min_pages << " pages, kernel granted "
                   << achieved;
  }
  return achieved;
}

bool release_hugetlb_pool(std::size_t page_bytes, std::size_t pages,
                          const std::string& sysfs_root) {
  std::ofstream out(pool_path(page_bytes, sysfs_root));
  if (!out) return false;
  out << pages;
  return static_cast<bool>(out);
}

}  // namespace fhp::mem
