#include "mem/meminfo.hpp"

#include <cinttypes>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace fhp::mem {

namespace {

/// Parse one "Name:  123 kB" line; returns bytes (kB scaled) or raw count.
struct Field {
  std::string_view name;
  std::uint64_t* dest;
  bool is_kb;  // value carries a kB suffix and should be scaled to bytes
};

void parse_fields(std::string_view text, const Field* fields, size_t nfields) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = trim(line.substr(0, colon));
    for (size_t i = 0; i < nfields; ++i) {
      if (name != fields[i].name) continue;
      const auto tokens = split_ws(line.substr(colon + 1));
      if (tokens.empty()) break;
      const auto value = parse_int(tokens[0]);
      if (!value || *value < 0) break;
      std::uint64_t v = static_cast<std::uint64_t>(*value);
      if (fields[i].is_kb && tokens.size() >= 2 &&
          (tokens[1] == "kB" || tokens[1] == "KB")) {
        v <<= 10;
      }
      *fields[i].dest = v;
      break;
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw SystemError("cannot open '" + path + "'", errno);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

MeminfoSnapshot MeminfoSnapshot::parse(std::string_view text) {
  MeminfoSnapshot s;
  const Field fields[] = {
      {"AnonHugePages", &s.anon_huge_pages, true},
      {"ShmemHugePages", &s.shmem_huge_pages, true},
      {"FileHugePages", &s.file_huge_pages, true},
      {"HugePages_Total", &s.huge_pages_total, false},
      {"HugePages_Free", &s.huge_pages_free, false},
      {"HugePages_Rsvd", &s.huge_pages_rsvd, false},
      {"HugePages_Surp", &s.huge_pages_surp, false},
      {"Hugepagesize", &s.hugepagesize, true},
      {"Hugetlb", &s.hugetlb, true},
      {"MemTotal", &s.mem_total, true},
      {"MemAvailable", &s.mem_available, true},
  };
  parse_fields(text, fields, std::size(fields));
  return s;
}

MeminfoSnapshot MeminfoSnapshot::capture(const std::string& path) {
  return parse(slurp(path));
}

MeminfoSnapshot::Delta MeminfoSnapshot::since(
    const MeminfoSnapshot& earlier) const {
  Delta d;
  d.anon_huge_pages = static_cast<std::int64_t>(anon_huge_pages) -
                      static_cast<std::int64_t>(earlier.anon_huge_pages);
  d.shmem_huge_pages = static_cast<std::int64_t>(shmem_huge_pages) -
                       static_cast<std::int64_t>(earlier.shmem_huge_pages);
  d.huge_pages_free = static_cast<std::int64_t>(huge_pages_free) -
                      static_cast<std::int64_t>(earlier.huge_pages_free);
  d.hugetlb = static_cast<std::int64_t>(hugetlb) -
              static_cast<std::int64_t>(earlier.hugetlb);
  return d;
}

std::string MeminfoSnapshot::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "AnonHugePages=%s HugePages_Total=%" PRIu64
                " HugePages_Free=%" PRIu64 " Hugepagesize=%s Hugetlb=%s",
                format_bytes(anon_huge_pages).c_str(), huge_pages_total,
                huge_pages_free, format_bytes(hugepagesize).c_str(),
                format_bytes(hugetlb).c_str());
  return buf;
}

std::ostream& operator<<(std::ostream& os, const MeminfoSnapshot& snap) {
  return os << snap.summary();
}

SmapsRollup SmapsRollup::parse(std::string_view text) {
  SmapsRollup s;
  const Field fields[] = {
      {"Rss", &s.rss, true},
      {"AnonHugePages", &s.anon_huge_pages, true},
      {"ShmemPmdMapped", &s.shmem_pmd_mapped, true},
      {"Private_Hugetlb", &s.private_hugetlb, true},
      {"Shared_Hugetlb", &s.shared_hugetlb, true},
  };
  parse_fields(text, fields, std::size(fields));
  return s;
}

SmapsRollup SmapsRollup::capture(const std::string& path) {
  return parse(slurp(path));
}

std::uint64_t range_huge_bytes(const void* addr, std::size_t len,
                               const std::string& smaps_path) {
  std::ifstream in(smaps_path);
  if (!in) return 0;
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  const auto hi = lo + len;

  std::uint64_t total = 0;
  bool in_range = false;
  std::string line;
  while (std::getline(in, line)) {
    // VMA header lines look like "7f12...-7f13... rw-p ...".
    const size_t dash = line.find('-');
    const size_t space = line.find(' ');
    if (dash != std::string::npos && space != std::string::npos &&
        dash < space) {
      char* end = nullptr;
      const std::uintptr_t vma_lo = std::strtoull(line.c_str(), &end, 16);
      const std::uintptr_t vma_hi =
          std::strtoull(line.c_str() + dash + 1, &end, 16);
      in_range = vma_lo < hi && vma_hi > lo;
      continue;
    }
    if (!in_range) continue;
    for (std::string_view key :
         {"AnonHugePages:", "Private_Hugetlb:", "Shared_Hugetlb:",
          "ShmemPmdMapped:"}) {
      if (starts_with(line, key)) {
        const auto tokens = split_ws(std::string_view(line).substr(key.size()));
        if (!tokens.empty()) {
          if (const auto v = parse_int(tokens[0]); v && *v > 0) {
            total += static_cast<std::uint64_t>(*v) << 10;
          }
        }
      }
    }
  }
  return total;
}

}  // namespace fhp::mem
