#include "mem/meminfo.hpp"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "support/string_util.hpp"

namespace fhp::mem {

namespace {

/// Signed difference of two optional fields; absent on either side is
/// treated as zero movement (a kernel cannot report a delta it cannot
/// observe).
std::int64_t field_delta(const ProcField& now, const ProcField& then) {
  if (!now.present() || !then.present()) return 0;
  return static_cast<std::int64_t>(now.value_or()) -
         static_cast<std::int64_t>(then.value_or());
}

std::string bytes_or_na(const ProcField& f) {
  return f.present() ? format_bytes(f.value_or()) : std::string("n/a");
}

}  // namespace

MeminfoSnapshot MeminfoSnapshot::parse(std::string_view text) {
  MeminfoSnapshot s;
  const ProcTableField fields[] = {
      {"AnonHugePages", &s.anon_huge_pages, true},
      {"ShmemHugePages", &s.shmem_huge_pages, true},
      {"FileHugePages", &s.file_huge_pages, true},
      {"HugePages_Total", &s.huge_pages_total, false},
      {"HugePages_Free", &s.huge_pages_free, false},
      {"HugePages_Rsvd", &s.huge_pages_rsvd, false},
      {"HugePages_Surp", &s.huge_pages_surp, false},
      {"Hugepagesize", &s.hugepagesize, true},
      {"Hugetlb", &s.hugetlb, true},
      {"MemTotal", &s.mem_total, true},
      {"MemAvailable", &s.mem_available, true},
  };
  parse_proc_table(text, fields, std::size(fields));
  return s;
}

MeminfoSnapshot MeminfoSnapshot::capture(const std::string& path) {
  return parse(slurp_proc_file(path));
}

MeminfoSnapshot::Delta MeminfoSnapshot::since(
    const MeminfoSnapshot& earlier) const {
  Delta d;
  d.anon_huge_pages = field_delta(anon_huge_pages, earlier.anon_huge_pages);
  d.shmem_huge_pages = field_delta(shmem_huge_pages, earlier.shmem_huge_pages);
  d.huge_pages_free = field_delta(huge_pages_free, earlier.huge_pages_free);
  d.hugetlb = field_delta(hugetlb, earlier.hugetlb);
  return d;
}

std::string MeminfoSnapshot::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "AnonHugePages=%s HugePages_Total=%" PRIu64
                " HugePages_Free=%" PRIu64 " Hugepagesize=%s Hugetlb=%s",
                bytes_or_na(anon_huge_pages).c_str(),
                huge_pages_total.value_or(), huge_pages_free.value_or(),
                bytes_or_na(hugepagesize).c_str(),
                bytes_or_na(hugetlb).c_str());
  return buf;
}

std::ostream& operator<<(std::ostream& os, const MeminfoSnapshot& snap) {
  return os << snap.summary();
}

SmapsRollup SmapsRollup::parse(std::string_view text) {
  SmapsRollup s;
  const ProcTableField fields[] = {
      {"Rss", &s.rss, true},
      {"AnonHugePages", &s.anon_huge_pages, true},
      {"ShmemPmdMapped", &s.shmem_pmd_mapped, true},
      {"FilePmdMapped", &s.file_pmd_mapped, true},
      {"Private_Hugetlb", &s.private_hugetlb, true},
      {"Shared_Hugetlb", &s.shared_hugetlb, true},
  };
  parse_proc_table(text, fields, std::size(fields));
  return s;
}

SmapsRollup SmapsRollup::capture(const std::string& path) {
  return parse(slurp_proc_file(path));
}

std::uint64_t range_huge_bytes(const void* addr, std::size_t len,
                               const std::string& smaps_path) {
  std::ifstream in(smaps_path);
  if (!in) return 0;
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  const auto hi = lo + len;

  std::uint64_t total = 0;
  bool in_range = false;
  std::string line;
  while (std::getline(in, line)) {
    // VMA header lines look like "7f12...-7f13... rw-p ...".
    const size_t dash = line.find('-');
    const size_t space = line.find(' ');
    if (dash != std::string::npos && space != std::string::npos &&
        dash < space) {
      char* end = nullptr;
      const std::uintptr_t vma_lo = std::strtoull(line.c_str(), &end, 16);
      const std::uintptr_t vma_hi =
          std::strtoull(line.c_str() + dash + 1, &end, 16);
      in_range = vma_lo < hi && vma_hi > lo;
      continue;
    }
    if (!in_range) continue;
    for (std::string_view key :
         {"AnonHugePages:", "Private_Hugetlb:", "Shared_Hugetlb:",
          "ShmemPmdMapped:", "FilePmdMapped:"}) {
      if (starts_with(line, key)) {
        const auto tokens = split_ws(std::string_view(line).substr(key.size()));
        if (!tokens.empty()) {
          if (const auto v = parse_int(tokens[0]); v && *v > 0) {
            total += static_cast<std::uint64_t>(*v) << 10;
          }
        }
      }
    }
  }
  return total;
}

}  // namespace fhp::mem
