#include "mem/huge_policy.hpp"

#include <atomic>
#include <cstdlib>

#include "mem/page_pool.hpp"
#include "support/error.hpp"
#include "support/runtime_params.hpp"
#include "support/string_util.hpp"

namespace fhp::mem {

std::string_view to_string(HugePolicy policy) noexcept {
  switch (policy) {
    case HugePolicy::kNone: return "none";
    case HugePolicy::kThp: return "thp";
    case HugePolicy::kHugetlbfs: return "hugetlbfs";
  }
  return "?";
}

std::optional<HugePolicy> parse_huge_policy(std::string_view s) {
  const std::string v = to_lower(trim(s));
  if (v == "none" || v == "off" || v == "small") return HugePolicy::kNone;
  if (v == "thp" || v == "transparent") return HugePolicy::kThp;
  if (v == "hugetlbfs" || v == "hugetlb" || v == "explicit") {
    return HugePolicy::kHugetlbfs;
  }
  return std::nullopt;
}

HugePolicy policy_from_environment(HugePolicy fallback) {
  for (const char* var : {kPolicyEnvVar, kFujitsuPolicyEnvVar}) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once when the page
    // policy is chosen at startup, single-threaded; nothing calls setenv.
    if (const char* raw = std::getenv(var); raw != nullptr && *raw != '\0') {
      const auto parsed = parse_huge_policy(raw);
      if (!parsed) {
        throw ConfigError(std::string(var) + "='" + raw +
                          "' is not a valid page policy "
                          "(expected none|thp|hugetlbfs)");
      }
      return *parsed;
    }
  }
  return fallback;
}

namespace {
std::atomic<int> g_default_policy{-1};  // -1: not yet initialized
}

HugePolicy default_policy() {
  int v = g_default_policy.load(std::memory_order_acquire);
  if (v < 0) {
    const HugePolicy env = policy_from_environment(HugePolicy::kNone);
    v = static_cast<int>(env);
    int expected = -1;
    g_default_policy.compare_exchange_strong(expected, v,
                                             std::memory_order_acq_rel);
    v = g_default_policy.load(std::memory_order_acquire);
  }
  return static_cast<HugePolicy>(v);
}

void set_default_policy(HugePolicy policy) noexcept {
  g_default_policy.store(static_cast<int>(policy), std::memory_order_release);
}

void declare_runtime_params(RuntimeParams& params) {
  params.declare_string(kPolicyParamName, "",
                        "huge-page policy (none|thp|hugetlbfs; empty: "
                        "resolve from " +
                            std::string(kPolicyEnvVar) + " / " +
                            kFujitsuPolicyEnvVar + ")");
  declare_page_pool_params(params);
}

void apply_runtime_params(const RuntimeParams& params) {
  apply_page_pool_params(params);
  const std::string value = params.get_string(kPolicyParamName);
  if (value.empty()) return;
  const auto parsed = parse_huge_policy(value);
  if (!parsed) {
    throw ConfigError(std::string(kPolicyParamName) + "='" + value +
                      "' is not a valid page policy "
                      "(expected none|thp|hugetlbfs)");
  }
  set_default_policy(*parsed);
}

}  // namespace fhp::mem
