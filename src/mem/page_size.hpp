/// \file page_size.hpp
/// \brief Page-size discovery: base pages, THP PMD size, hugetlb pools.
///
/// The paper's Ookami nodes were booted with `hugepagesz=2M hugepagesz=512M
/// default_hugepagesz=2M`; at run time the available sizes appear under
/// /sys/kernel/mm/hugepages/hugepages-<N>kB. This header exposes that
/// discovery (with injectable sysfs roots so tests can use fixtures).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace fhp::mem {

/// Common page sizes, for convenience and for the TLB model configs.
inline constexpr std::size_t kPage4K = 4ull << 10;
inline constexpr std::size_t kPage64K = 64ull << 10;
inline constexpr std::size_t kPage2M = 2ull << 20;
inline constexpr std::size_t kPage512M = 512ull << 20;
inline constexpr std::size_t kPage1G = 1ull << 30;

/// The base (small) page size of the running kernel, from sysconf.
[[nodiscard]] std::size_t base_page_size() noexcept;

/// The THP PMD size (bytes) — what an anonymous THP mapping is promoted
/// to — from /sys/kernel/mm/transparent_hugepage/hpage_pmd_size.
/// Returns nullopt if THP is not built into the kernel.
[[nodiscard]] std::optional<std::size_t> thp_pmd_size(
    const std::string& sysfs_root = "/sys/kernel/mm/transparent_hugepage");

/// State of one hugetlb pool (one page size).
struct HugetlbPool {
  std::size_t page_bytes = 0;       ///< pool page size in bytes
  std::size_t nr_hugepages = 0;     ///< total pages configured
  std::size_t free_hugepages = 0;   ///< currently free
  std::size_t resv_hugepages = 0;   ///< reserved
  std::size_t surplus_hugepages = 0;///< overcommitted
};

/// Enumerate hugetlb pools from /sys/kernel/mm/hugepages (sorted by size).
/// An empty result means no hugetlb support or no pools configured.
[[nodiscard]] std::vector<HugetlbPool> hugetlb_pools(
    const std::string& sysfs_root = "/sys/kernel/mm/hugepages");

/// Parse a "hugepages-2048kB" style directory name to a byte size.
[[nodiscard]] std::optional<std::size_t> parse_hugepages_dirname(
    const std::string& name);

/// Round \p bytes up to a multiple of \p page (page must be a power of two).
[[nodiscard]] constexpr std::size_t round_up(std::size_t bytes,
                                             std::size_t page) noexcept {
  return (bytes + page - 1) & ~(page - 1);
}

/// True if \p v is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two (used for MAP_HUGE_SHIFT encoding).
[[nodiscard]] constexpr unsigned log2_pow2(std::size_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace fhp::mem
