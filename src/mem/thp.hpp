/// \file thp.hpp
/// \brief Transparent-huge-page introspection and per-mapping control.
///
/// The paper toggles the system policy by writing
/// /sys/kernel/mm/transparent_hugepage/enabled ("[always] madvise never").
/// flashhp reads that policy, and controls THP *per mapping* with
/// madvise(MADV_HUGEPAGE / MADV_NOHUGEPAGE) — which works under both the
/// `always` and `madvise` system settings and needs no privileges.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace fhp::mem {

/// System-wide THP mode from the sysfs `enabled` file.
enum class ThpMode { kAlways, kMadvise, kNever, kUnknown };

[[nodiscard]] std::string_view to_string(ThpMode mode) noexcept;

/// Parse the bracketed sysfs format, e.g. "always [madvise] never".
[[nodiscard]] ThpMode parse_thp_enabled(std::string_view contents) noexcept;

/// Read the system THP mode; kUnknown if the file is absent (no THP).
[[nodiscard]] ThpMode system_thp_mode(
    const std::string& sysfs_root = "/sys/kernel/mm/transparent_hugepage");

/// True if anonymous THP can be obtained by this process (mode is
/// `always` or `madvise`).
[[nodiscard]] bool thp_available(
    const std::string& sysfs_root = "/sys/kernel/mm/transparent_hugepage");

/// madvise(MADV_HUGEPAGE) on [addr, addr+len). Returns false (with errno
/// preserved) if the kernel rejects the hint; throws nothing.
bool advise_huge(void* addr, std::size_t len) noexcept;

/// madvise(MADV_NOHUGEPAGE): forbid THP for the range. This is how the
/// "without huge pages" arm of the experiment is made honest even when the
/// system policy is `always`.
bool advise_no_huge(void* addr, std::size_t len) noexcept;

/// madvise(MADV_COLLAPSE) if the kernel supports it: synchronously collapse
/// the range into huge pages. Returns false if unsupported or failed.
bool collapse_range(void* addr, std::size_t len) noexcept;

}  // namespace fhp::mem
