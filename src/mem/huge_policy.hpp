/// \file huge_policy.hpp
/// \brief The page-size policy knob: none | thp | hugetlbfs.
///
/// This is the library's analog of the Fujitsu runtime's
/// XOS_MMM_L_HPAGE_TYPE environment variable (values none / hugetlbfs, with
/// thp additionally accepted on Fugaku/FX700 per the paper §III): one
/// setting flips every large allocation in the process between page
/// regimes with no source changes. flashhp reads FLASHHP_HPAGE_TYPE first
/// and falls back to XOS_MMM_L_HPAGE_TYPE for drop-in compatibility.

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace fhp::mem {

/// How large allocations should be backed.
enum class HugePolicy {
  kNone,       ///< base pages only; THP explicitly disabled via MADV_NOHUGEPAGE
  kThp,        ///< anonymous mmap + madvise(MADV_HUGEPAGE) (transparent HPs)
  kHugetlbfs,  ///< explicit MAP_HUGETLB reservations, fall back to THP
};

/// Canonical lower-case spelling ("none", "thp", "hugetlbfs").
[[nodiscard]] std::string_view to_string(HugePolicy policy) noexcept;

/// Parse a policy string (case-insensitive); nullopt if unrecognized.
[[nodiscard]] std::optional<HugePolicy> parse_huge_policy(std::string_view s);

/// Environment variable names honoured by policy_from_environment().
inline constexpr const char* kPolicyEnvVar = "FLASHHP_HPAGE_TYPE";
inline constexpr const char* kFujitsuPolicyEnvVar = "XOS_MMM_L_HPAGE_TYPE";

/// Resolve the policy from the environment: FLASHHP_HPAGE_TYPE, then
/// XOS_MMM_L_HPAGE_TYPE, then the given default. An unparsable value
/// throws fhp::ConfigError (silent misconfiguration was exactly the
/// failure mode the paper spent a section debugging).
[[nodiscard]] HugePolicy policy_from_environment(
    HugePolicy fallback = HugePolicy::kNone);

/// Process-wide default policy used by Arena when none is given explicitly.
/// Initialized lazily from policy_from_environment(kNone).
[[nodiscard]] HugePolicy default_policy();

/// Override the process-wide default (e.g. from a runtime parameter file).
void set_default_policy(HugePolicy policy) noexcept;

}  // namespace fhp::mem
