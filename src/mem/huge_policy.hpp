/// \file huge_policy.hpp
/// \brief The page-size policy knob: none | thp | hugetlbfs.
///
/// This is the library's analog of the Fujitsu runtime's
/// XOS_MMM_L_HPAGE_TYPE environment variable (values none / hugetlbfs, with
/// thp additionally accepted on Fugaku/FX700 per the paper §III): one
/// setting flips every large allocation in the process between page
/// regimes with no source changes.
///
/// There is exactly ONE resolution order for the process default, and
/// every entry point (environment, runtime-parameter files, explicit
/// calls) feeds into it. First hit wins:
///
///   1. an explicit set_default_policy() call — including the one made by
///      apply_runtime_params() when a parameter file / command line sets
///      a non-empty "mem.hpage_type",
///   2. the FLASHHP_HPAGE_TYPE environment variable,
///   3. the XOS_MMM_L_HPAGE_TYPE environment variable (drop-in
///      compatibility with the Fujitsu runtime),
///   4. the caller-supplied fallback (kNone for default_policy()).
///
/// An unparsable value at any stage throws fhp::ConfigError rather than
/// silently running on base pages — silent misconfiguration was exactly
/// the failure mode the paper spent a section debugging.

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::mem {

/// How large allocations should be backed.
enum class HugePolicy {
  kNone,       ///< base pages only; THP explicitly disabled via MADV_NOHUGEPAGE
  kThp,        ///< anonymous mmap + madvise(MADV_HUGEPAGE) (transparent HPs)
  kHugetlbfs,  ///< explicit MAP_HUGETLB reservations, fall back to THP
};

/// Canonical lower-case spelling ("none", "thp", "hugetlbfs").
[[nodiscard]] std::string_view to_string(HugePolicy policy) noexcept;

/// Parse a policy string (case-insensitive); nullopt if unrecognized.
[[nodiscard]] std::optional<HugePolicy> parse_huge_policy(std::string_view s);

/// Environment variable names honoured by policy_from_environment().
inline constexpr const char* kPolicyEnvVar = "FLASHHP_HPAGE_TYPE";
inline constexpr const char* kFujitsuPolicyEnvVar = "XOS_MMM_L_HPAGE_TYPE";

/// Steps 2-4 of the resolution order (see file comment): the environment
/// variables in precedence order, then \p fallback. Throws ConfigError on
/// an unparsable value.
[[nodiscard]] HugePolicy policy_from_environment(
    HugePolicy fallback = HugePolicy::kNone);

/// Process-wide default policy used by Arena when none is given
/// explicitly. The policy slot is a single atomic, initialized lazily via
/// the documented resolution order; concurrent first readers race only on
/// writing the same resolved value.
[[nodiscard]] HugePolicy default_policy();

/// Step 1 of the resolution order: pin the process-wide default,
/// overriding whatever the environment says from now on.
void set_default_policy(HugePolicy policy) noexcept;

/// Name of the runtime parameter declared by declare_runtime_params().
inline constexpr const char* kPolicyParamName = "mem.hpage_type";

/// Declare "mem.hpage_type" (default "": defer to the environment) so
/// parameter files and --mem.hpage_type=... share the one resolution
/// order instead of growing a second, subtly different one.
void declare_runtime_params(RuntimeParams& params);

/// If "mem.hpage_type" was set non-empty, parse it (ConfigError on junk)
/// and pin it via set_default_policy(). Call after apply_command_line().
void apply_runtime_params(const RuntimeParams& params);

}  // namespace fhp::mem
