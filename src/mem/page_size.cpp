#include "mem/page_size.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "support/string_util.hpp"

namespace fhp::mem {

namespace fs = std::filesystem;

namespace {
std::optional<std::size_t> read_size_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  long long v = -1;
  in >> v;
  if (!in || v < 0) return std::nullopt;
  return static_cast<std::size_t>(v);
}
}  // namespace

std::size_t base_page_size() noexcept {
  const long v = ::sysconf(_SC_PAGESIZE);
  return v > 0 ? static_cast<std::size_t>(v) : kPage4K;
}

std::optional<std::size_t> thp_pmd_size(const std::string& sysfs_root) {
  return read_size_file(fs::path(sysfs_root) / "hpage_pmd_size");
}

std::optional<std::size_t> parse_hugepages_dirname(const std::string& name) {
  static constexpr std::string_view kPrefix = "hugepages-";
  static constexpr std::string_view kSuffix = "kB";
  if (!starts_with(name, kPrefix)) return std::nullopt;
  std::string_view middle = std::string_view(name).substr(kPrefix.size());
  if (middle.size() <= kSuffix.size() ||
      middle.substr(middle.size() - kSuffix.size()) != kSuffix) {
    return std::nullopt;
  }
  middle.remove_suffix(kSuffix.size());
  const auto kb = parse_int(middle);
  if (!kb || *kb <= 0) return std::nullopt;
  return static_cast<std::size_t>(*kb) << 10;
}

std::vector<HugetlbPool> hugetlb_pools(const std::string& sysfs_root) {
  std::vector<HugetlbPool> pools;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(sysfs_root, ec)) {
    const auto size = parse_hugepages_dirname(entry.path().filename().string());
    if (!size) continue;
    HugetlbPool pool;
    pool.page_bytes = *size;
    pool.nr_hugepages = read_size_file(entry.path() / "nr_hugepages").value_or(0);
    pool.free_hugepages =
        read_size_file(entry.path() / "free_hugepages").value_or(0);
    pool.resv_hugepages =
        read_size_file(entry.path() / "resv_hugepages").value_or(0);
    pool.surplus_hugepages =
        read_size_file(entry.path() / "surplus_hugepages").value_or(0);
    pools.push_back(pool);
  }
  std::sort(pools.begin(), pools.end(),
            [](const HugetlbPool& a, const HugetlbPool& b) {
              return a.page_bytes < b.page_bytes;
            });
  return pools;
}

}  // namespace fhp::mem
