/// \file hugeadm.hpp
/// \brief Hugetlb pool administration — the library's `hugeadm`.
///
/// The paper's admins prepared Ookami nodes with the libhugetlbfs-utils
/// tool `hugeadm` (plus boot parameters hugepagesz=2M hugepagesz=512M
/// default_hugepagesz=2M) so explicit huge pages could be reserved. This
/// header provides the same operation programmatically: resize a pool by
/// writing /sys/kernel/mm/hugepages/hugepages-<N>kB/nr_hugepages.
/// Requires privilege; callers must treat failure as "pool unavailable"
/// and fall back (the library's allocation path already does).

#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace fhp::mem {

/// Request that the pool for \p page_bytes hold at least \p min_pages.
/// Returns the pool size actually achieved (the kernel may grant fewer
/// pages under fragmentation), or nullopt if the pool cannot be resized
/// at all (no such pool, or insufficient privilege).
std::optional<std::size_t> ensure_hugetlb_pool(
    std::size_t page_bytes, std::size_t min_pages,
    const std::string& sysfs_root = "/sys/kernel/mm/hugepages");

/// Shrink the pool back to \p pages (typically 0 after an experiment so
/// the reservation is returned to the system). Best-effort.
bool release_hugetlb_pool(
    std::size_t page_bytes, std::size_t pages = 0,
    const std::string& sysfs_root = "/sys/kernel/mm/hugepages");

}  // namespace fhp::mem
