#include "mem/numa.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "support/string_util.hpp"

namespace fhp::mem {

namespace fs = std::filesystem;

namespace {

std::optional<std::size_t> read_size_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  long long v = -1;
  in >> v;
  if (!in || v < 0) return std::nullopt;
  return static_cast<std::size_t>(v);
}

char ascii_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

}  // namespace

std::optional<int> parse_node_dirname(const std::string& name) {
  static constexpr std::string_view kPrefix = "node";
  if (!starts_with(name, kPrefix)) return std::nullopt;
  const std::string_view digits = std::string_view(name).substr(kPrefix.size());
  if (digits.empty()) return std::nullopt;
  const auto id = parse_int(digits);
  if (!id || *id < 0) return std::nullopt;
  return static_cast<int>(*id);
}

std::vector<NodeHugePools> node_hugetlb_pools(const std::string& node_root) {
  std::vector<NodeHugePools> nodes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(node_root, ec)) {
    const auto id = parse_node_dirname(entry.path().filename().string());
    if (!id) continue;
    NodeHugePools node;
    node.node = *id;
    const fs::path hugepages = entry.path() / "hugepages";
    std::error_code inner_ec;
    for (const auto& pool_dir : fs::directory_iterator(hugepages, inner_ec)) {
      const auto size =
          parse_hugepages_dirname(pool_dir.path().filename().string());
      if (!size) continue;
      HugetlbPool pool;
      pool.page_bytes = *size;
      pool.nr_hugepages =
          read_size_file(pool_dir.path() / "nr_hugepages").value_or(0);
      pool.free_hugepages =
          read_size_file(pool_dir.path() / "free_hugepages").value_or(0);
      // Per-node trees expose no resv_hugepages file; leave it zero.
      pool.surplus_hugepages =
          read_size_file(pool_dir.path() / "surplus_hugepages").value_or(0);
      node.pools.push_back(pool);
    }
    std::sort(node.pools.begin(), node.pools.end(),
              [](const HugetlbPool& a, const HugetlbPool& b) {
                return a.page_bytes < b.page_bytes;
              });
    nodes.push_back(std::move(node));
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeHugePools& a, const NodeHugePools& b) {
              return a.node < b.node;
            });
  return nodes;
}

std::string_view to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kLocalFirst: return "local-first";
    case PlacementPolicy::kRemoteHugeFirst: return "remote-huge-first";
  }
  return "?";
}

std::optional<PlacementPolicy> parse_placement_policy(std::string_view s) {
  if (iequals(s, "local") || iequals(s, "local-first") ||
      iequals(s, "first-touch")) {
    return PlacementPolicy::kLocalFirst;
  }
  if (iequals(s, "remote") || iequals(s, "remote-huge") ||
      iequals(s, "remote-huge-first")) {
    return PlacementPolicy::kRemoteHugeFirst;
  }
  return std::nullopt;
}

}  // namespace fhp::mem
