#include "mem/vmstat.hpp"

#include <cinttypes>
#include <cstdio>

namespace fhp::mem {

namespace {

std::int64_t field_delta(const ProcField& now, const ProcField& then) {
  if (!now.present() || !then.present()) return 0;
  return static_cast<std::int64_t>(now.value_or()) -
         static_cast<std::int64_t>(then.value_or());
}

}  // namespace

VmstatSnapshot VmstatSnapshot::parse(std::string_view text) {
  VmstatSnapshot s;
  const ProcTableField fields[] = {
      {"thp_fault_alloc", &s.thp_fault_alloc, false},
      {"thp_fault_fallback", &s.thp_fault_fallback, false},
      {"thp_collapse_alloc", &s.thp_collapse_alloc, false},
      {"thp_split_page", &s.thp_split_page, false},
      {"pgfault", &s.pgfault, false},
  };
  parse_proc_table(text, fields, std::size(fields));
  return s;
}

VmstatSnapshot VmstatSnapshot::capture(const std::string& path) {
  return parse(slurp_proc_file(path));
}

VmstatSnapshot::Delta VmstatSnapshot::since(
    const VmstatSnapshot& earlier) const {
  Delta d;
  d.thp_fault_alloc = field_delta(thp_fault_alloc, earlier.thp_fault_alloc);
  d.thp_fault_fallback =
      field_delta(thp_fault_fallback, earlier.thp_fault_fallback);
  d.thp_collapse_alloc =
      field_delta(thp_collapse_alloc, earlier.thp_collapse_alloc);
  d.thp_split_page = field_delta(thp_split_page, earlier.thp_split_page);
  return d;
}

std::string VmstatSnapshot::summary() const {
  if (!thp_accounting_present()) {
    return "vmstat: no THP event accounting on this kernel";
  }
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "thp_fault_alloc=%" PRIu64 " thp_fault_fallback=%" PRIu64
                " thp_collapse_alloc=%" PRIu64 " thp_split_page=%" PRIu64,
                thp_fault_alloc.value_or(), thp_fault_fallback.value_or(),
                thp_collapse_alloc.value_or(), thp_split_page.value_or());
  return buf;
}

}  // namespace fhp::mem
