/// \file numa.hpp
/// \brief Per-NUMA-node hugetlb inventories and the placement vocabulary.
///
/// The kernel exposes a hugetlb pool tree *per node* under
/// /sys/devices/system/node/node<N>/hugepages/hugepages-<M>kB (the
/// per-node trees carry nr/free/surplus but no resv field). This header
/// reads those inventories — with an injectable root so tests run against
/// fixture trees, the same pattern as hugetlb_pools() — and defines the
/// vocabulary mem::PagePool and tlb::Machine share to talk about
/// placement: PlacementPolicy and PoolDecision.
///
/// The kRemoteHugeFirst policy follows the RemoteHugePages observation
/// (see PAPERS.md): on a NUMA machine where the local node's pool has run
/// dry, a *remote* huge page often beats a *local* small page, because
/// the page-walk traffic a small page induces costs more than the extra
/// hops of remote accesses. This file deliberately holds no cost model —
/// costs live in tlb::Machine, which may depend on mem (never the
/// reverse; tools/fhp_analyze.py enforces the direction).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mem/mapped_region.hpp"
#include "mem/page_size.hpp"

namespace fhp::mem {

/// One node's hugetlb pools (pools sorted by page size, as hugetlb_pools).
struct NodeHugePools {
  int node = 0;
  std::vector<HugetlbPool> pools;
};

/// Enumerate per-node hugetlb pools from /sys/devices/system/node
/// (injectable root). Nodes are sorted by id; an empty result means the
/// kernel exposes no node tree (containers, non-NUMA configs) — callers
/// fall back to the system-wide hugetlb_pools() view as a single node.
[[nodiscard]] std::vector<NodeHugePools> node_hugetlb_pools(
    const std::string& node_root = "/sys/devices/system/node");

/// Parse a "node3" style directory name to the node id.
[[nodiscard]] std::optional<int> parse_node_dirname(const std::string& name);

/// How PagePool binds allocations to nodes.
enum class PlacementPolicy {
  /// First-touch local: allocate from the local node's pool; when it
  /// cannot satisfy the request, degrade the page size locally
  /// (THP, then base pages) rather than leave the node.
  kLocalFirst,
  /// Prefer remote-huge over local-small: local pool first, then any
  /// other node whose pool can satisfy the request, and only then
  /// degrade the page size.
  kRemoteHugeFirst,
};

/// Canonical spelling ("local-first", "remote-huge-first").
[[nodiscard]] std::string_view to_string(PlacementPolicy policy) noexcept;

/// Parse a placement policy string (case-insensitive); nullopt if
/// unrecognized. Accepts "local"/"local-first"/"first-touch" and
/// "remote-huge"/"remote-huge-first"/"remote".
[[nodiscard]] std::optional<PlacementPolicy> parse_placement_policy(
    std::string_view s);

/// What the pool decided for one allocation: the page-size tier, the
/// chosen pool page and node, and a static reason string for logs and
/// reports. The decision is what the *policy* chose from the configured
/// inventory; the MappedRegion records what the kernel actually granted,
/// and PagePool counts any shortfall between the two — the paper's
/// verify-don't-assume rule applied to placement.
struct PoolDecision {
  Backing tier = Backing::kSmallPages;
  std::size_t page_bytes = 0;  ///< pool page size for kHugetlbfs, else 0
  int node = -1;               ///< chosen node; -1 = no node binding modeled
  bool remote = false;         ///< node differs from the pool's local node
  const char* reason = "";     ///< e.g. "local-huge", "pool-exhausted->thp"
};

}  // namespace fhp::mem
