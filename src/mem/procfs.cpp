#include "mem/procfs.hpp"

#include <cerrno>
#include <fstream>
#include <sstream>

#include "support/string_util.hpp"

namespace fhp::mem {

void parse_proc_table(std::string_view text, const ProcTableField* fields,
                      std::size_t nfields) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    // meminfo/smaps lines are "Name:  value [kB]", vmstat lines are
    // "name value": take the first token and strip a trailing colon.
    const auto tokens = split_ws(line);
    if (tokens.size() < 2) continue;
    std::string_view name = tokens[0];
    if (!name.empty() && name.back() == ':') name.remove_suffix(1);

    for (std::size_t i = 0; i < nfields; ++i) {
      if (name != fields[i].name) continue;
      const auto value = parse_int(tokens[1]);
      if (!value || *value < 0) break;
      auto v = static_cast<std::uint64_t>(*value);
      if (fields[i].is_kb && tokens.size() >= 3 &&
          (tokens[2] == "kB" || tokens[2] == "KB")) {
        v <<= 10;
      }
      *fields[i].dest = ProcField(v);
      break;
    }
  }
}

std::string slurp_proc_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    // Capture errno before building the message: the string concatenation
    // allocates and may clobber the open() failure code.
    const int err = errno;
    throw SystemError("cannot open '" + path + "'", err);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace fhp::mem
