#include "mem/thp.hpp"

#include <sys/mman.h>

#include <fstream>

#include "support/string_util.hpp"

#ifndef MADV_COLLAPSE
#define MADV_COLLAPSE 25  // since Linux 6.1; harmless EINVAL on older kernels
#endif

namespace fhp::mem {

std::string_view to_string(ThpMode mode) noexcept {
  switch (mode) {
    case ThpMode::kAlways: return "always";
    case ThpMode::kMadvise: return "madvise";
    case ThpMode::kNever: return "never";
    case ThpMode::kUnknown: return "unknown";
  }
  return "?";
}

ThpMode parse_thp_enabled(std::string_view contents) noexcept {
  const size_t open = contents.find('[');
  const size_t close = contents.find(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close <= open + 1) {
    return ThpMode::kUnknown;
  }
  const std::string_view active = contents.substr(open + 1, close - open - 1);
  if (active == "always") return ThpMode::kAlways;
  if (active == "madvise") return ThpMode::kMadvise;
  if (active == "never") return ThpMode::kNever;
  return ThpMode::kUnknown;
}

ThpMode system_thp_mode(const std::string& sysfs_root) {
  std::ifstream in(sysfs_root + "/enabled");
  if (!in) return ThpMode::kUnknown;
  std::string line;
  std::getline(in, line);
  return parse_thp_enabled(line);
}

bool thp_available(const std::string& sysfs_root) {
  const ThpMode mode = system_thp_mode(sysfs_root);
  return mode == ThpMode::kAlways || mode == ThpMode::kMadvise;
}

bool advise_huge(void* addr, std::size_t len) noexcept {
  return ::madvise(addr, len, MADV_HUGEPAGE) == 0;
}

bool advise_no_huge(void* addr, std::size_t len) noexcept {
  return ::madvise(addr, len, MADV_NOHUGEPAGE) == 0;
}

bool collapse_range(void* addr, std::size_t len) noexcept {
  return ::madvise(addr, len, MADV_COLLAPSE) == 0;
}

}  // namespace fhp::mem
