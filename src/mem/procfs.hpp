/// \file procfs.hpp
/// \brief Shared plumbing for the /proc readers: optional-like fields and
/// the "Name:  123 kB" table parser.
///
/// The paper's verification method is reading /proc files, and the repo
/// rule (tools/flashhp_lint.py, `procfs-hygiene`) is that *all* procfs
/// access lives behind the injectable-path readers in src/mem and
/// src/obs. Kernel generations disagree about which fields exist —
/// CentOS-7-era 3.10 has no FileHugePages, pre-4.4 has no AnonHugePages
/// in smaps_rollup (no smaps_rollup at all, in fact) — so a reader that
/// initializes missing fields to zero cannot distinguish "THP delivered
/// nothing" from "this kernel cannot say". ProcField carries that
/// distinction: every parsed field knows whether its line was present.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace fhp::mem {

/// Optional-like value of one /proc field. Default-constructed fields are
/// *absent*; parsing a matching line makes them present. Constructing
/// from a value (as tests and deltas do) makes a present field.
class ProcField {
 public:
  constexpr ProcField() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) — a present value
  // converts implicitly so fixtures and comparisons read naturally.
  constexpr ProcField(std::uint64_t value) : value_(value), present_(true) {}

  /// True if the field's line appeared in the parsed text.
  [[nodiscard]] constexpr bool present() const noexcept { return present_; }
  [[nodiscard]] constexpr bool has_value() const noexcept { return present_; }

  /// The value, or \p fallback when the kernel did not report the field.
  [[nodiscard]] constexpr std::uint64_t value_or(
      std::uint64_t fallback = 0) const noexcept {
    return present_ ? value_ : fallback;
  }

  /// The value; throws fhp::ConfigError when absent. Use value_or() when
  /// "absent" has a sensible meaning for the caller.
  [[nodiscard]] std::uint64_t value() const {
    FHP_REQUIRE(present_, "ProcField::value() on an absent /proc field");
    return value_;
  }

  /// Absent fields compare equal to each other and unequal to any value.
  friend constexpr bool operator==(const ProcField&,
                                   const ProcField&) = default;

 private:
  std::uint64_t value_ = 0;
  bool present_ = false;
};

/// One row of a /proc table parse: the field's name as it appears in the
/// file, where to store it, and whether its value carries a "kB" suffix
/// that should be scaled to bytes.
struct ProcTableField {
  std::string_view name;
  ProcField* dest;
  bool is_kb;
};

/// Parse `Name:  123 kB` / `Name 123` lines (meminfo, smaps_rollup and
/// vmstat are all this grammar, with and without the colon) into the
/// matching fields. Unmatched lines are skipped; unmatched fields stay
/// absent.
void parse_proc_table(std::string_view text, const ProcTableField* fields,
                      std::size_t nfields);

/// Read a whole (small) /proc file; throws fhp::SystemError if it cannot
/// be opened. procfs files have no stable size, so this slurps via
/// rdbuf, not stat.
[[nodiscard]] std::string slurp_proc_file(const std::string& path);

}  // namespace fhp::mem
