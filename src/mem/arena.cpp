#include "mem/arena.hpp"

#include <algorithm>
#include <sstream>

#include "mem/page_size.hpp"
#include "support/contracts.hpp"
#include "support/mutex.hpp"
#include "support/string_util.hpp"

namespace fhp::mem {

Arena::Arena(HugePolicy policy, std::size_t chunk_bytes, PagePool* pool)
    : policy_(policy), chunk_bytes_(chunk_bytes), pool_(pool) {
  FHP_PRECONDITION(chunk_bytes_ >= kPage2M,
                   "arena chunk size must be at least one huge page (2 MiB)");
}

void Arena::add_chunk(std::size_t min_bytes) {
  // Null-pool fallback kept for the deprecated global_arena() shim; code
  // inside a runtime passes its pool. fhp-lint: allow(singleton-instance)
  PagePool& pool = pool_ != nullptr ? *pool_ : global_page_pool();
  PoolAllocation chunk =
      pool.alloc(std::max(min_bytes, chunk_bytes_), policy_);
  switch (chunk.backing()) {
    case Backing::kHugetlbfs: ++stats_.hugetlb_chunks; break;
    case Backing::kThp: ++stats_.thp_chunks; break;
    case Backing::kSmallPages: ++stats_.small_chunks; break;
  }
  if (chunk.decision().remote) ++stats_.remote_chunks;
  stats_.bytes_reserved += chunk.size();
  ++stats_.chunk_count;
  cursor_ = static_cast<std::byte*>(chunk.data());
  chunk_end_ = cursor_ + chunk.size();
  chunks_.push_back(std::move(chunk));
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  FHP_PRECONDITION(bytes > 0, "zero-byte arena allocation");
  FHP_PRECONDITION(is_pow2(alignment), "alignment must be a power of two");
  MutexLock lock(mutex_);

  auto align_up = [alignment](std::byte* p) {
    auto v = reinterpret_cast<std::uintptr_t>(p);
    v = (v + alignment - 1) & ~(alignment - 1);
    return reinterpret_cast<std::byte*>(v);
  };

  std::byte* aligned = align_up(cursor_);
  if (cursor_ == nullptr ||
      aligned + bytes > chunk_end_) {
    add_chunk(bytes + alignment);
    aligned = align_up(cursor_);
    FHP_ASSERT(aligned + bytes <= chunk_end_, "fresh chunk too small");
  }
  cursor_ = aligned + bytes;
  stats_.bytes_requested += bytes;
  ++stats_.allocation_count;
  return aligned;
}

void Arena::release() noexcept {
  MutexLock lock(mutex_);
  chunks_.clear();
  cursor_ = nullptr;
  chunk_end_ = nullptr;
  stats_ = ArenaStats{};
}

ArenaStats Arena::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::uint64_t Arena::resident_huge_bytes() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& chunk : chunks_) {
    total += chunk.region().resident_huge_bytes();
  }
  return total;
}

std::string Arena::report() const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  os << "Arena[policy=" << to_string(policy_) << "] " << chunks_.size()
     << " chunk(s), " << format_bytes(stats_.bytes_reserved) << " reserved, "
     << format_bytes(stats_.bytes_requested) << " allocated in "
     << stats_.allocation_count << " allocation(s)\n";
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const auto& region = chunks_[i].region();
    const auto& decision = chunks_[i].decision();
    os << "  chunk " << i << ": " << region.describe() << ", huge-resident "
       << format_bytes(region.resident_huge_bytes()) << ", pool decision "
       << decision.reason;
    if (decision.node >= 0) os << " node" << decision.node;
    os << '\n';
  }
  return os.str();
}

Arena& global_arena() {
  static Arena arena(default_policy());
  return arena;
}

}  // namespace fhp::mem
