/// \file page_pool.hpp
/// \brief mem::PagePool — an explicit huge-page pool manager with NUMA
///        placement and a contract-enforced degradation ladder.
///
/// The paper's Ookami runs worked because an administrator pre-reserved
/// hugetlb pools (`hugeadm`, boot parameters) and the Fujitsu runtime
/// then carved every large allocation from them. MappedRegion gives us
/// the per-mapping mechanics; PagePool adds the *management* layer on
/// top:
///
///   - an init → alloc → status → fini lifecycle with hard contracts
///     (double-init and alloc-after-fini throw fhp::ConfigError — a pool
///     misused is a configuration bug, not a soft failure),
///   - capacity/free accounting read from the sysfs hugetlb trees (both
///     the system-wide tree and the per-NUMA-node trees), with injectable
///     roots so tests run unprivileged against fixtures,
///   - a placement policy across nodes, including kRemoteHugeFirst —
///     prefer a *remote huge* page over a *local small* page when the
///     local pool has run dry (the RemoteHugePages result),
///   - graceful, *logged and counted* degradation when pools are
///     exhausted: hugetlbfs → THP → base pages, never a crash and never
///     a silent page-size change. Every decision is queryable
///     (PoolDecision) and every shortfall between the decision and what
///     the kernel actually granted is counted — verify, don't assume.
///
/// PagePool does not mmap anything itself: all mappings go through
/// MappedRegion, which owns the one raw-mmap seam in the library
/// (tools/flashhp_lint.py enforces that scoping).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/mapped_region.hpp"
#include "mem/numa.hpp"
#include "mem/page_size.hpp"
#include "support/events.hpp"
#include "support/mutex.hpp"

namespace fhp {
class RuntimeParams;
}  // namespace fhp

namespace fhp::mem {

/// One pool reservation request: "hold N pages of this size".
struct PoolReservation {
  std::size_t page_bytes = 0;
  std::size_t pages = 0;
};

/// Configuration for PagePool::init(). All sysfs roots are injectable so
/// tests (and CI containers without privilege) run against fixture trees.
struct PagePoolConfig {
  /// System-wide hugetlb tree (capacity reporting + reservation writes).
  std::string hugepages_root = "/sys/kernel/mm/hugepages";
  /// Per-node tree; nodes under here become the pool inventory.
  std::string node_root = "/sys/devices/system/node";
  /// THP tree; hpage_pmd_size decides whether the THP fallback tier exists.
  std::string thp_root = "/sys/kernel/mm/transparent_hugepage";

  /// false = pass-through mode: alloc() forwards to MappedRegion without
  /// consulting any inventory (FLASHHP_PAGE_POOL=off).
  bool enabled = true;

  /// Best-effort pool sizing performed at init() (requires privilege;
  /// failure is logged, not fatal — the inventory then reports whatever
  /// the system already had).
  std::vector<PoolReservation> reservations;

  /// The node considered local for placement decisions.
  int local_node = 0;

  PlacementPolicy placement = PlacementPolicy::kLocalFirst;

  /// Non-empty: use this inventory verbatim instead of scanning sysfs.
  /// This is how tests and benchmarks model asymmetric node pools
  /// deterministically.
  std::vector<NodeHugePools> inventory;

  /// Where POOL_* counter events are published (may be null).
  perf::CounterSink* sink = nullptr;
};

/// Running totals of pool decisions (monotonic over the pool's lifetime).
struct PoolCounters {
  std::uint64_t huge_allocs = 0;         ///< placed on a hugetlb pool
  std::uint64_t remote_huge_allocs = 0;  ///< subset placed on a remote node
  std::uint64_t thp_fallbacks = 0;       ///< degraded to THP
  std::uint64_t base_fallbacks = 0;      ///< degraded to base pages
  std::uint64_t exhausted_events = 0;    ///< no pool could satisfy a request
  /// Decisions the kernel did not honour (decided tier != actual backing).
  std::uint64_t backing_shortfalls = 0;
};

/// Snapshot returned by PagePool::status().
struct PoolStatus {
  bool enabled = true;
  std::string_view state = "idle";  ///< "idle" | "ready" | "finished"
  PlacementPolicy placement = PlacementPolicy::kLocalFirst;
  int local_node = 0;
  bool thp_available = false;
  /// The pool mirror: free_hugepages reflects pages the pool has handed
  /// out, not necessarily what sysfs says right now.
  std::vector<NodeHugePools> inventory;
  PoolCounters counters;
};

/// One allocation carved from the pool: the mapping plus the placement
/// decision that produced it. Move-only, releases on destruction.
class PoolAllocation {
 public:
  PoolAllocation() = default;
  PoolAllocation(MappedRegion region, const PoolDecision& decision)
      : region_(std::move(region)), decision_(decision) {}

  PoolAllocation(PoolAllocation&& other) noexcept
      : region_(std::move(other.region_)), decision_(other.decision_) {
    other.decision_ = PoolDecision{};
  }
  PoolAllocation& operator=(PoolAllocation&& other) noexcept {
    if (this != &other) {
      region_ = std::move(other.region_);
      decision_ = other.decision_;
      other.decision_ = PoolDecision{};
    }
    return *this;
  }
  PoolAllocation(const PoolAllocation&) = delete;
  PoolAllocation& operator=(const PoolAllocation&) = delete;

  [[nodiscard]] void* data() const noexcept { return region_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return region_.size(); }
  [[nodiscard]] bool valid() const noexcept { return region_.valid(); }

  /// The underlying mapping (kernel truth: backing(), page_bytes(), ...).
  [[nodiscard]] const MappedRegion& region() const noexcept { return region_; }

  /// What the pool *decided* (policy truth; may differ from region()'s
  /// backing — PagePool counts such shortfalls).
  [[nodiscard]] const PoolDecision& decision() const noexcept {
    return decision_;
  }

  /// Shorthand for region().backing().
  [[nodiscard]] Backing backing() const noexcept { return region_.backing(); }

 private:
  MappedRegion region_;
  PoolDecision decision_;
};

/// Environment knobs honoured by config_from_environment():
///   FLASHHP_PAGE_POOL = off | 0        disable the pool (pass-through)
///                     | <N>            reserve N 2 MiB pages at init
///                     | 2M:<N>,1G:<M>  explicit per-size reservations
///   FLASHHP_PLACEMENT = local-first | remote-huge-first
inline constexpr const char* kPoolEnvVar = "FLASHHP_PAGE_POOL";
inline constexpr const char* kPlacementEnvVar = "FLASHHP_PLACEMENT";

/// Parse a FLASHHP_PAGE_POOL spec into (enabled, reservations). Throws
/// fhp::ConfigError on junk — silent misconfiguration is the failure mode
/// this library exists to eliminate.
void parse_pool_spec(std::string_view spec, bool& enabled,
                     std::vector<PoolReservation>& reservations);

/// Default config resolved from runtime parameters (if applied) and the
/// environment, in that order.
[[nodiscard]] PagePoolConfig config_from_environment();

/// The pool manager. All entry points are thread-safe (one internal
/// mutex); allocations themselves are serialized, which is fine — flashhp
/// carves arenas at setup time, not in inner loops.
class PagePool {
 public:
  PagePool() = default;
  ~PagePool() = default;
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// Reserve pools (best-effort), read the node inventory, and arm the
  /// pool. Throws ConfigError if already initialized (double-init) or
  /// already finished.
  void init(PagePoolConfig config);

  /// Decide placement for \p bytes under \p policy without mapping
  /// anything: consults and decrements the inventory mirror, updates
  /// counters, publishes POOL_* events. Auto-initializes from the
  /// environment on first use; throws ConfigError after fini().
  [[nodiscard]] PoolDecision plan(std::size_t bytes, HugePolicy policy);

  /// plan() + carve the mapping through MappedRegion, honouring the
  /// decided tier (a decided THP fallback skips the doomed MAP_HUGETLB
  /// attempt entirely). Records a backing shortfall if the kernel did
  /// not honour the decision. Never crashes on exhaustion — the ladder
  /// ends at base pages, and base-page mmap failure is an out-of-memory
  /// SystemError from MappedRegion, not a pool bug.
  [[nodiscard]] PoolAllocation alloc(std::size_t bytes, HugePolicy policy);

  /// alloc() with the process default policy.
  [[nodiscard]] PoolAllocation alloc(std::size_t bytes);

  /// Snapshot of state, inventory mirror, and counters. Valid in any
  /// lifecycle state.
  [[nodiscard]] PoolStatus status() const;

  /// `hugectl --pool-list` style human-readable report of status().
  [[nodiscard]] std::string status_text() const;

  [[nodiscard]] PoolCounters counters() const;

  /// Retire the pool: further plan()/alloc() throw ConfigError.
  /// Idempotent once finished; throws ConfigError if never initialized.
  void fini();

 private:
  enum class State { kIdle, kReady, kFinished };

  void init_locked(PagePoolConfig config) FHP_REQUIRES(mutex_);
  void ensure_ready_locked() FHP_REQUIRES(mutex_);
  [[nodiscard]] PoolDecision plan_locked(std::size_t bytes, HugePolicy policy)
      FHP_REQUIRES(mutex_);
  /// Find a pool on \p node with enough free pages for \p bytes; returns
  /// the pool page size (0 = none) and, via \p pool_out, the mirror slot.
  [[nodiscard]] std::size_t find_pool_locked(int node, std::size_t bytes,
                                             HugetlbPool** pool_out)
      FHP_REQUIRES(mutex_);

  mutable Mutex mutex_;
  State state_ FHP_GUARDED_BY(mutex_) = State::kIdle;
  PagePoolConfig config_ FHP_GUARDED_BY(mutex_);
  std::vector<NodeHugePools> inventory_ FHP_GUARDED_BY(mutex_);
  bool thp_available_ FHP_GUARDED_BY(mutex_) = false;
  PoolCounters counters_ FHP_GUARDED_BY(mutex_);
};

/// The process-wide pool backing `rt::Runtime::process_default()` (and,
/// transitionally, `global_arena()`). Auto-initializes from the
/// environment on first allocation. New code should not call this —
/// take a PagePool& (or an rt::Runtime&) instead; the lint rule
/// `singleton-instance` bans new call sites outside the shims.
// fhp-lint: allow(singleton-instance)
[[nodiscard]] PagePool& global_page_pool();

/// Names of the runtime parameters declared by declare_page_pool_params().
inline constexpr const char* kPoolParamName = "mem.page_pool";
inline constexpr const char* kPlacementParamName = "mem.placement";

/// Declare "mem.page_pool" and "mem.placement" (defaults "": defer to the
/// environment). Called from mem::declare_runtime_params().
void declare_page_pool_params(RuntimeParams& params);

/// Record non-empty parameter values as overrides consulted by
/// config_from_environment() ahead of the environment variables. Throws
/// ConfigError on junk. Called from mem::apply_runtime_params().
void apply_page_pool_params(const RuntimeParams& params);

}  // namespace fhp::mem
