/// \file mapped_region.hpp
/// \brief RAII anonymous memory mappings with a huge-page policy.
///
/// A MappedRegion is the unit of backing storage in flashhp. Depending on
/// the requested HugePolicy it tries, in order:
///
///   kHugetlbfs:  mmap(MAP_ANONYMOUS|MAP_HUGETLB|MAP_HUGE_<size>) for each
///                configured pool size (largest that fits first), then
///                falls back to the THP path, then to base pages.
///   kThp:        mmap(MAP_ANONYMOUS) aligned to the THP PMD size, then
///                madvise(MADV_HUGEPAGE).
///   kNone:       mmap(MAP_ANONYMOUS) + madvise(MADV_NOHUGEPAGE), so the
///                "without huge pages" experiment arm stays honest even on
///                systems where THP is set to `always`.
///
/// The backing that actually succeeded is recorded and queryable — the
/// paper's core methodological point is that you must *verify* huge pages
/// are in use, not assume it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "mem/huge_policy.hpp"

namespace fhp::mem {

/// What a MappedRegion ended up being backed by.
enum class Backing {
  kSmallPages,  ///< base 4 KiB pages (THP forbidden)
  kThp,         ///< anonymous pages eligible for THP promotion
  kHugetlbfs,   ///< explicit hugetlb reservation
};

[[nodiscard]] std::string_view to_string(Backing backing) noexcept;

/// Request parameters for a mapping.
struct MapRequest {
  std::size_t bytes = 0;             ///< required capacity (rounded up)
  HugePolicy policy = HugePolicy::kNone;
  /// Preferred hugetlb page size; 0 = pick the largest pool page that does
  /// not waste more than half the allocation.
  std::size_t hugetlb_page = 0;
  /// Touch every page after mapping so the experiment measures steady-state
  /// access, not first-touch faults (and so THP promotion has happened —
  /// with MADV_HUGEPAGE the kernel allocates huge pages at fault time).
  bool prefault = true;
};

/// An owning anonymous mapping. Move-only.
class MappedRegion {
 public:
  MappedRegion() = default;

  /// Map per \p request. Throws fhp::SystemError only if even the base-page
  /// path fails; hugetlb/THP failures fall back silently but are recorded.
  explicit MappedRegion(const MapRequest& request);

  ~MappedRegion();
  MappedRegion(MappedRegion&& other) noexcept;
  MappedRegion& operator=(MappedRegion&& other) noexcept;
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  [[nodiscard]] void* data() const noexcept { return addr_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return addr_ != nullptr; }

  /// The page regime that actually backs this region.
  [[nodiscard]] Backing backing() const noexcept { return backing_; }

  /// The page size of the backing (hugetlb pool size, THP PMD size, or the
  /// base page size). For kThp this is the *eligible* promotion size; use
  /// resident_huge_bytes() to see how much was actually promoted.
  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }

  /// The policy that was requested (may differ from what was obtained).
  [[nodiscard]] HugePolicy requested_policy() const noexcept {
    return requested_;
  }

  /// Bytes of this region currently resident on huge pages, per
  /// /proc/self/smaps. Zero for kSmallPages regions (by construction).
  [[nodiscard]] std::uint64_t resident_huge_bytes() const;

  /// True if [ptr, ptr + bytes) lies entirely inside this mapping — the
  /// mapped-range-containment contract checked at the mesh boundaries.
  [[nodiscard]] bool contains(const void* ptr,
                              std::size_t bytes) const noexcept {
    const auto p = reinterpret_cast<std::uintptr_t>(ptr);
    const auto base = reinterpret_cast<std::uintptr_t>(addr_);
    return addr_ != nullptr && p >= base && bytes <= size_ &&
           p - base <= size_ - bytes;
  }

  /// Touch every page (write one byte per page) to force population.
  void prefault() noexcept;

  /// Release the mapping early (idempotent).
  void reset() noexcept;

  /// One-line description: "2.0 MiB hugetlbfs(2.0 MiB pages) @0x...".
  [[nodiscard]] std::string describe() const;

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t page_bytes_ = 0;
  Backing backing_ = Backing::kSmallPages;
  HugePolicy requested_ = HugePolicy::kNone;
};

}  // namespace fhp::mem
