#include "mem/page_pool.hpp"

#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "mem/huge_policy.hpp"
#include "mem/hugeadm.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/runtime_params.hpp"
#include "support/string_util.hpp"

namespace fhp::mem {

namespace {

/// Runtime-parameter overrides recorded by apply_page_pool_params();
/// consulted ahead of the environment by config_from_environment().
struct ParamOverrides {
  Mutex mutex;
  std::optional<std::string> pool_spec FHP_GUARDED_BY(mutex);
  std::optional<PlacementPolicy> placement FHP_GUARDED_BY(mutex);
};

ParamOverrides& param_overrides() {
  static ParamOverrides overrides;
  return overrides;
}

std::string_view state_name(int state) noexcept {
  switch (state) {
    case 0: return "idle";
    case 1: return "ready";
    case 2: return "finished";
  }
  return "?";
}

/// Pages needed to cover \p bytes from a pool of \p page_bytes pages.
std::size_t pages_needed(std::size_t bytes, std::size_t page_bytes) noexcept {
  return round_up(bytes, page_bytes) / page_bytes;
}

void publish_event(perf::CounterSink* sink, perf::Event e) noexcept {
  if (sink == nullptr) return;
  perf::CounterSet delta;
  delta[e] = 1;
  sink->sink_counters(delta);
}

}  // namespace

void parse_pool_spec(std::string_view spec, bool& enabled,
                     std::vector<PoolReservation>& reservations) {
  enabled = true;
  reservations.clear();
  const std::string v = to_lower(trim(spec));
  if (v.empty()) return;
  if (v == "off" || v == "0" || v == "none" || v == "false") {
    enabled = false;
    return;
  }
  // Bare count: reserve that many pages of the paper's default 2 MiB size.
  if (const auto n = parse_int(v); n && *n > 0) {
    reservations.push_back({kPage2M, static_cast<std::size_t>(*n)});
    return;
  }
  // "2M:4,1G:1" style explicit per-size reservations.
  for (const auto& field : split(v, ',')) {
    const auto parts = split(trim(field), ':');
    const auto fail = [&spec, &field]() -> void {
      throw ConfigError("bad page-pool spec '" + std::string(spec) +
                        "' (field '" + field +
                        "'): expected off | <pages> | <size>:<pages>[,...]");
    };
    if (parts.size() != 2) fail();
    const auto size = parse_size_bytes(trim(parts[0]));
    const auto count = parse_int(trim(parts[1]));
    if (!size || !is_pow2(*size) || !count || *count < 0) fail();
    reservations.push_back(
        {static_cast<std::size_t>(*size), static_cast<std::size_t>(*count)});
  }
}

PagePoolConfig config_from_environment() {
  PagePoolConfig config;

  std::optional<std::string> spec;
  {
    auto& overrides = param_overrides();
    MutexLock lock(overrides.mutex);
    spec = overrides.pool_spec;
    if (overrides.placement) config.placement = *overrides.placement;
  }
  if (!spec) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once when the pool is
    // configured at startup, single-threaded; nothing calls setenv.
    if (const char* raw = std::getenv(kPoolEnvVar);
        raw != nullptr && *raw != '\0') {
      spec = std::string(raw);
    }
  }
  if (spec) parse_pool_spec(*spec, config.enabled, config.reservations);

  bool have_placement = false;
  {
    auto& overrides = param_overrides();
    MutexLock lock(overrides.mutex);
    have_placement = overrides.placement.has_value();
  }
  if (!have_placement) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- same setup-time-only read.
    if (const char* raw = std::getenv(kPlacementEnvVar);
        raw != nullptr && *raw != '\0') {
      const auto parsed = parse_placement_policy(raw);
      if (!parsed) {
        throw ConfigError(std::string(kPlacementEnvVar) + "='" + raw +
                          "' is not a valid placement policy "
                          "(expected local-first|remote-huge-first)");
      }
      config.placement = *parsed;
    }
  }
  return config;
}

void PagePool::init(PagePoolConfig config) {
  MutexLock lock(mutex_);
  init_locked(std::move(config));
}

void PagePool::init_locked(PagePoolConfig config) {
  if (state_ == State::kReady) {
    throw ConfigError("PagePool::init() called twice (pool is ready; call "
                      "fini() first if reconfiguration is intended)");
  }
  if (state_ == State::kFinished) {
    throw ConfigError("PagePool::init() called on a finished pool");
  }

  // Best-effort pool sizing — exactly what `hugeadm --pool-pages-min`
  // would do. Unprivileged (tests, CI containers) this fails and we run
  // with whatever the system already reserved.
  for (const auto& r : config.reservations) {
    const auto got =
        ensure_hugetlb_pool(r.page_bytes, r.pages, config.hugepages_root);
    if (!got) {
      FHP_LOG(kInfo) << "cannot reserve " << r.pages << " x "
                     << format_bytes(r.page_bytes)
                     << " hugetlb pages (no privilege or no such pool); "
                        "using existing reservation";
    } else if (*got < r.pages) {
      FHP_LOG(kWarn) << "hugetlb pool " << format_bytes(r.page_bytes)
                     << " granted only " << *got << '/' << r.pages
                     << " pages (fragmentation?)";
    }
  }

  // Inventory: explicit override > per-node sysfs tree > system-wide tree
  // synthesized as a single node 0.
  if (!config.inventory.empty()) {
    inventory_ = config.inventory;
  } else {
    inventory_ = node_hugetlb_pools(config.node_root);
    if (inventory_.empty()) {
      NodeHugePools node;
      node.node = 0;
      node.pools = hugetlb_pools(config.hugepages_root);
      if (!node.pools.empty()) inventory_.push_back(std::move(node));
    }
  }
  thp_available_ = thp_pmd_size(config.thp_root).has_value();
  config_ = std::move(config);
  counters_ = PoolCounters{};
  state_ = State::kReady;
}

void PagePool::ensure_ready_locked() {
  if (state_ == State::kIdle) {
    init_locked(config_from_environment());
    return;
  }
  if (state_ == State::kFinished) {
    throw ConfigError("PagePool used after fini()");
  }
}

std::size_t PagePool::find_pool_locked(int node, std::size_t bytes,
                                       HugetlbPool** pool_out) {
  *pool_out = nullptr;
  for (auto& n : inventory_) {
    if (n.node != node) continue;
    // Prefer the largest pool page <= bytes with enough free pages (so a
    // 40 MiB request does not burn a 1 GiB page), else the smallest pool
    // that can satisfy the request.
    HugetlbPool* best = nullptr;
    for (auto& p : n.pools) {
      if (p.free_hugepages < pages_needed(bytes, p.page_bytes)) continue;
      if (best == nullptr || p.page_bytes <= bytes) best = &p;
    }
    if (best != nullptr) {
      *pool_out = best;
      return best->page_bytes;
    }
    return 0;
  }
  return 0;
}

PoolDecision PagePool::plan(std::size_t bytes, HugePolicy policy) {
  MutexLock lock(mutex_);
  ensure_ready_locked();
  return plan_locked(bytes, policy);
}

PoolDecision PagePool::plan_locked(std::size_t bytes, HugePolicy policy) {
  PoolDecision d;
  if (!config_.enabled) {
    // Pass-through: MappedRegion's own ladder governs; nothing is counted.
    d.tier = policy == HugePolicy::kHugetlbfs ? Backing::kHugetlbfs
             : policy == HugePolicy::kThp     ? Backing::kThp
                                              : Backing::kSmallPages;
    d.reason = "pool-disabled";
    return d;
  }
  switch (policy) {
    case HugePolicy::kNone:
      d.tier = Backing::kSmallPages;
      d.reason = "policy=none";
      return d;
    case HugePolicy::kThp:
      if (thp_available_) {
        d.tier = Backing::kThp;
        d.reason = "policy=thp";
      } else {
        d.tier = Backing::kSmallPages;
        d.reason = "thp-unavailable->base";
        ++counters_.base_fallbacks;
        publish_event(config_.sink, perf::Event::kPoolBaseFallbacks);
      }
      return d;
    case HugePolicy::kHugetlbfs:
      break;
  }

  // Local node first.
  HugetlbPool* pool = nullptr;
  std::size_t page = find_pool_locked(config_.local_node, bytes, &pool);
  int node = config_.local_node;

  // Remote-huge-first: a remote huge page beats a local small page.
  if (pool == nullptr &&
      config_.placement == PlacementPolicy::kRemoteHugeFirst) {
    for (const auto& n : inventory_) {
      if (n.node == config_.local_node) continue;
      page = find_pool_locked(n.node, bytes, &pool);
      if (pool != nullptr) {
        node = n.node;
        break;
      }
    }
  }

  if (pool != nullptr) {
    pool->free_hugepages -= pages_needed(bytes, page);
    d.tier = Backing::kHugetlbfs;
    d.page_bytes = page;
    d.node = node;
    d.remote = node != config_.local_node;
    d.reason = d.remote ? "remote-huge" : "local-huge";
    ++counters_.huge_allocs;
    publish_event(config_.sink, perf::Event::kPoolHugeAllocs);
    if (d.remote) {
      ++counters_.remote_huge_allocs;
      publish_event(config_.sink, perf::Event::kPoolRemoteAllocs);
    }
    return d;
  }

  // Exhausted: degrade, loudly.
  ++counters_.exhausted_events;
  if (thp_available_) {
    d.tier = Backing::kThp;
    d.reason = "pool-exhausted->thp";
    ++counters_.thp_fallbacks;
    publish_event(config_.sink, perf::Event::kPoolThpFallbacks);
  } else {
    d.tier = Backing::kSmallPages;
    d.reason = "pool-exhausted->base";
    ++counters_.base_fallbacks;
    publish_event(config_.sink, perf::Event::kPoolBaseFallbacks);
  }
  FHP_LOG(kInfo) << "page pool exhausted for " << format_bytes(bytes)
                 << " (placement=" << to_string(config_.placement)
                 << "); degrading to "
                 << (d.tier == Backing::kThp ? "THP" : "base pages");
  return d;
}

PoolAllocation PagePool::alloc(std::size_t bytes, HugePolicy policy) {
  const PoolDecision d = plan(bytes, policy);

  MapRequest req;
  req.bytes = bytes;
  switch (d.tier) {
    case Backing::kHugetlbfs:
      req.policy = HugePolicy::kHugetlbfs;
      req.hugetlb_page = d.page_bytes;
      break;
    case Backing::kThp:
      // A decided THP fallback skips the doomed MAP_HUGETLB attempt.
      req.policy = HugePolicy::kThp;
      break;
    case Backing::kSmallPages:
      req.policy = HugePolicy::kNone;
      break;
  }
  MappedRegion region(req);

  if (region.backing() != d.tier) {
    {
      MutexLock lock(mutex_);
      ++counters_.backing_shortfalls;
    }
    FHP_LOG(kInfo) << "pool decided " << to_string(d.tier) << " ("
                   << d.reason << ") but the kernel granted "
                   << to_string(region.backing()) << " for "
                   << format_bytes(bytes);
  }
  return {std::move(region), d};
}

PoolAllocation PagePool::alloc(std::size_t bytes) {
  return alloc(bytes, default_policy());
}

PoolStatus PagePool::status() const {
  MutexLock lock(mutex_);
  PoolStatus s;
  s.enabled = config_.enabled;
  s.state = state_name(static_cast<int>(state_));
  s.placement = config_.placement;
  s.local_node = config_.local_node;
  s.thp_available = thp_available_;
  s.inventory = inventory_;
  s.counters = counters_;
  return s;
}

std::string PagePool::status_text() const {
  const PoolStatus s = status();
  std::ostringstream os;
  os << "page pool: " << s.state << (s.enabled ? "" : " (disabled)")
     << " placement=" << to_string(s.placement)
     << " local-node=" << s.local_node
     << " thp=" << (s.thp_available ? "available" : "unavailable") << '\n';
  if (s.inventory.empty()) {
    os << "  (no hugetlb pools configured)\n";
  }
  for (const auto& n : s.inventory) {
    os << "  node" << n.node << ":\n";
    for (const auto& p : n.pools) {
      os << "    " << format_bytes(p.page_bytes) << " pages: "
         << p.free_hugepages << '/' << p.nr_hugepages << " free";
      if (p.surplus_hugepages != 0) {
        os << " (" << p.surplus_hugepages << " surplus)";
      }
      os << '\n';
    }
  }
  os << "  allocs: huge=" << s.counters.huge_allocs
     << " remote-huge=" << s.counters.remote_huge_allocs
     << " thp-fallback=" << s.counters.thp_fallbacks
     << " base-fallback=" << s.counters.base_fallbacks
     << " exhausted=" << s.counters.exhausted_events
     << " shortfall=" << s.counters.backing_shortfalls << '\n';
  return os.str();
}

PoolCounters PagePool::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

void PagePool::fini() {
  MutexLock lock(mutex_);
  if (state_ == State::kIdle) {
    throw ConfigError("PagePool::fini() called on an uninitialized pool");
  }
  state_ = State::kFinished;  // idempotent from kFinished
}

// The process-wide pool, kept only as the substrate of the deprecated
// shims and rt::Runtime::process_default(). fhp-lint: allow(singleton-instance)
PagePool& global_page_pool() {
  static PagePool pool;
  return pool;
}

void declare_page_pool_params(RuntimeParams& params) {
  params.declare_string(kPoolParamName, "",
                        "page-pool reservation spec (off | <pages> | "
                        "<size>:<pages>[,...]; empty: resolve from " +
                            std::string(kPoolEnvVar) + ")");
  params.declare_string(kPlacementParamName, "",
                        "NUMA placement policy "
                        "(local-first|remote-huge-first; empty: resolve "
                        "from " +
                            std::string(kPlacementEnvVar) + ")");
}

void apply_page_pool_params(const RuntimeParams& params) {
  const std::string spec = params.get_string(kPoolParamName);
  if (!spec.empty()) {
    // Validate now (ConfigError on junk) so a bad parameter file fails at
    // apply time, not at first allocation.
    bool enabled = true;
    std::vector<PoolReservation> reservations;
    parse_pool_spec(spec, enabled, reservations);
    auto& overrides = param_overrides();
    MutexLock lock(overrides.mutex);
    overrides.pool_spec = spec;
  }
  const std::string placement = params.get_string(kPlacementParamName);
  if (!placement.empty()) {
    const auto parsed = parse_placement_policy(placement);
    if (!parsed) {
      throw ConfigError(std::string(kPlacementParamName) + "='" + placement +
                        "' is not a valid placement policy "
                        "(expected local-first|remote-huge-first)");
    }
    auto& overrides = param_overrides();
    MutexLock lock(overrides.mutex);
    overrides.placement = *parsed;
  }
}

}  // namespace fhp::mem
