/// \file arena.hpp
/// \brief Monotonic arena over huge-page-backed mapped regions.
///
/// FLASH's mesh data (`unk` and friends) is allocated once at startup and
/// lives for the whole run — a monotonic arena is the right shape. The
/// arena grows in large chunks (default 64 MiB) carved from a PagePool
/// under the arena's HugePolicy, so one policy switch moves every
/// simulation array between page regimes, exactly like the Fujitsu
/// runtime does for FLASH — and the pool's placement policy and
/// degradation accounting apply to every chunk.
///
/// Thread-safety: allocation takes an internal mutex (cheap; the hot paths
/// of the simulation never allocate).

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "mem/huge_policy.hpp"
#include "mem/mapped_region.hpp"
#include "mem/page_pool.hpp"
#include "support/contracts.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace fhp::mem {

/// Aggregate statistics for an Arena.
struct ArenaStats {
  std::size_t bytes_requested = 0;  ///< sum of allocation sizes
  std::size_t bytes_reserved = 0;   ///< sum of chunk sizes mapped
  std::size_t chunk_count = 0;
  std::size_t allocation_count = 0;
  std::size_t hugetlb_chunks = 0;   ///< chunks that got explicit hugetlb
  std::size_t thp_chunks = 0;       ///< chunks that are THP-eligible
  std::size_t small_chunks = 0;     ///< chunks on base pages
  std::size_t remote_chunks = 0;    ///< chunks placed on a non-local node
};

/// Monotonic allocator with pluggable page policy.
class Arena {
 public:
  /// \param policy page regime for all chunks.
  /// \param chunk_bytes growth quantum; individual allocations larger than
  ///        this get a dedicated chunk of their own size.
  /// \param pool the PagePool chunks are carved from; nullptr defers to
  ///        global_page_pool() at first allocation (so constructing an
  ///        Arena never forces pool initialization).
  explicit Arena(HugePolicy policy = default_policy(),
                 std::size_t chunk_bytes = 64ull << 20,
                 PagePool* pool = nullptr);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate \p bytes with \p alignment (power of two, <= chunk size).
  /// Never returns nullptr; throws fhp::SystemError on exhaustion.
  void* allocate(std::size_t bytes, std::size_t alignment = 64);

  /// Typed convenience: allocate a zero-initialized array of \p count T.
  /// Throws fhp::ConfigError if count * sizeof(T) overflows std::size_t
  /// (which would otherwise silently allocate a tiny wrapped-around
  /// buffer). This check is always on, independent of FLASHHP_CONTRACTS.
  template <typename T>
  T* allocate_array(std::size_t count) {
    FHP_REQUIRE(count <= std::numeric_limits<std::size_t>::max() / sizeof(T),
                "allocate_array byte count overflows size_t");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T) > 64
                                                           ? alignof(T)
                                                           : 64));
  }

  /// Monotonic arenas do not free individual allocations; deallocate is a
  /// no-op provided for allocator-interface compatibility.
  void deallocate(void* /*ptr*/, std::size_t /*bytes*/) noexcept {}

  /// Drop every chunk (invalidates all outstanding allocations).
  void release() noexcept;

  [[nodiscard]] HugePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] ArenaStats stats() const;

  /// Bytes of arena memory currently resident on huge pages (per smaps).
  [[nodiscard]] std::uint64_t resident_huge_bytes() const;

  /// Multi-line report of chunks and backing, for run logs.
  [[nodiscard]] std::string report() const;

 private:
  void add_chunk(std::size_t min_bytes) FHP_REQUIRES(mutex_);

  mutable Mutex mutex_;
  HugePolicy policy_;       // set in the constructor, immutable afterwards
  std::size_t chunk_bytes_; // set in the constructor, immutable afterwards
  PagePool* pool_;          // set in the constructor, immutable afterwards
  std::vector<PoolAllocation> chunks_ FHP_GUARDED_BY(mutex_);
  /// next free byte in the last chunk
  std::byte* cursor_ FHP_GUARDED_BY(mutex_) = nullptr;
  std::byte* chunk_end_ FHP_GUARDED_BY(mutex_) = nullptr;
  ArenaStats stats_ FHP_GUARDED_BY(mutex_);
};

/// The process-wide arena used by the mesh/EOS containers unless an
/// explicit arena is supplied. Its policy is fixed on first use from
/// mem::default_policy() (i.e. the environment).
[[nodiscard]] Arena& global_arena();

}  // namespace fhp::mem
