/// \file meminfo.hpp
/// \brief /proc/meminfo and /proc/self/smaps_rollup monitors.
///
/// The paper verified huge-page usage "by looking at system variables in
/// /proc/meminfo that would have values if the huge pages were in use":
/// AnonHugePages, ShmemHugePages, HugePages_Total/Free/Rsvd/Surp,
/// Hugepagesize, Hugetlb. MeminfoSnapshot captures exactly those fields;
/// SmapsRollup gives the per-process view (the more precise check).
///
/// Every field is a mem::ProcField — present only if its line appeared —
/// because kernel generations disagree about the field set (CentOS-7-era
/// 3.10 has no FileHugePages or MemAvailable; FilePmdMapped arrived in
/// 4.20). "0 bytes on huge pages" and "this kernel cannot say" are
/// different observations, and the obs::Sampler records them differently.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "mem/procfs.hpp"

namespace fhp::mem {

/// The huge-page-related fields of /proc/meminfo, in bytes (counts for the
/// HugePages_* pool entries, which /proc reports as page counts).
struct MeminfoSnapshot {
  ProcField anon_huge_pages;    ///< AnonHugePages (bytes) — THP
  ProcField shmem_huge_pages;   ///< ShmemHugePages (bytes)
  ProcField file_huge_pages;    ///< FileHugePages (bytes, 5.4+)
  ProcField huge_pages_total;   ///< HugePages_Total (pages)
  ProcField huge_pages_free;    ///< HugePages_Free (pages)
  ProcField huge_pages_rsvd;    ///< HugePages_Rsvd (pages)
  ProcField huge_pages_surp;    ///< HugePages_Surp (pages)
  ProcField hugepagesize;       ///< Hugepagesize (bytes)
  ProcField hugetlb;            ///< Hugetlb (bytes, 4.19+)
  ProcField mem_total;          ///< MemTotal (bytes)
  ProcField mem_available;      ///< MemAvailable (bytes, 3.14+)

  /// Capture from /proc/meminfo (or another file, for tests).
  static MeminfoSnapshot capture(const std::string& path = "/proc/meminfo");

  /// Parse from meminfo-format text (fixture-friendly).
  static MeminfoSnapshot parse(std::string_view text);

  /// Field-wise difference (this - earlier), saturating at zero is NOT
  /// applied — deltas may be negative conceptually, so this returns signed
  /// deltas via the named struct below. Absent fields difference as zero.
  struct Delta {
    std::int64_t anon_huge_pages = 0;
    std::int64_t shmem_huge_pages = 0;
    std::int64_t huge_pages_free = 0;
    std::int64_t hugetlb = 0;
  };
  [[nodiscard]] Delta since(const MeminfoSnapshot& earlier) const;

  /// Human-readable one-line summary of the huge-page fields ("n/a" for
  /// fields this kernel does not report).
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const MeminfoSnapshot& snap);

/// Per-process memory rollup (the fields we need from smaps_rollup).
struct SmapsRollup {
  ProcField rss;              ///< Rss (bytes)
  ProcField anon_huge_pages;  ///< AnonHugePages (bytes) backing us
  ProcField shmem_pmd_mapped; ///< ShmemPmdMapped (bytes)
  ProcField file_pmd_mapped;  ///< FilePmdMapped (bytes, 4.20+)
  ProcField private_hugetlb;  ///< Private_Hugetlb (bytes)
  ProcField shared_hugetlb;   ///< Shared_Hugetlb (bytes)

  static SmapsRollup capture(const std::string& path = "/proc/self/smaps_rollup");
  static SmapsRollup parse(std::string_view text);

  /// Total bytes of this process resident on any kind of huge page
  /// (absent fields count as zero — they cannot be claimed either way).
  [[nodiscard]] std::uint64_t total_huge_bytes() const noexcept {
    return anon_huge_pages.value_or() + shmem_pmd_mapped.value_or() +
           file_pmd_mapped.value_or() + private_hugetlb.value_or() +
           shared_hugetlb.value_or();
  }
};

/// Count bytes of a specific VMA range currently backed by huge pages, by
/// scanning /proc/self/smaps. Slower than smaps_rollup but range-precise;
/// used by tests and by MappedRegion::resident_huge_bytes().
[[nodiscard]] std::uint64_t range_huge_bytes(
    const void* addr, std::size_t len,
    const std::string& smaps_path = "/proc/self/smaps");

}  // namespace fhp::mem
