/// \file meminfo.hpp
/// \brief /proc/meminfo and /proc/self/smaps_rollup monitors.
///
/// The paper verified huge-page usage "by looking at system variables in
/// /proc/meminfo that would have values if the huge pages were in use":
/// AnonHugePages, ShmemHugePages, HugePages_Total/Free/Rsvd/Surp,
/// Hugepagesize, Hugetlb. MeminfoSnapshot captures exactly those fields;
/// SmapsRollup gives the per-process view (the more precise check).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace fhp::mem {

/// The huge-page-related fields of /proc/meminfo, in bytes (counts for the
/// HugePages_* pool entries, which /proc reports as page counts).
struct MeminfoSnapshot {
  std::uint64_t anon_huge_pages = 0;    ///< AnonHugePages (bytes) — THP
  std::uint64_t shmem_huge_pages = 0;   ///< ShmemHugePages (bytes)
  std::uint64_t file_huge_pages = 0;    ///< FileHugePages (bytes)
  std::uint64_t huge_pages_total = 0;   ///< HugePages_Total (pages)
  std::uint64_t huge_pages_free = 0;    ///< HugePages_Free (pages)
  std::uint64_t huge_pages_rsvd = 0;    ///< HugePages_Rsvd (pages)
  std::uint64_t huge_pages_surp = 0;    ///< HugePages_Surp (pages)
  std::uint64_t hugepagesize = 0;       ///< Hugepagesize (bytes)
  std::uint64_t hugetlb = 0;            ///< Hugetlb (bytes)
  std::uint64_t mem_total = 0;          ///< MemTotal (bytes)
  std::uint64_t mem_available = 0;      ///< MemAvailable (bytes)

  /// Capture from /proc/meminfo (or another file, for tests).
  static MeminfoSnapshot capture(const std::string& path = "/proc/meminfo");

  /// Parse from meminfo-format text (fixture-friendly).
  static MeminfoSnapshot parse(std::string_view text);

  /// Field-wise difference (this - earlier), saturating at zero is NOT
  /// applied — deltas may be negative conceptually, so this returns signed
  /// deltas via the named struct below.
  struct Delta {
    std::int64_t anon_huge_pages = 0;
    std::int64_t shmem_huge_pages = 0;
    std::int64_t huge_pages_free = 0;
    std::int64_t hugetlb = 0;
  };
  [[nodiscard]] Delta since(const MeminfoSnapshot& earlier) const;

  /// Human-readable one-line summary of the huge-page fields.
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const MeminfoSnapshot& snap);

/// Per-process memory rollup (the fields we need from smaps_rollup).
struct SmapsRollup {
  std::uint64_t rss = 0;             ///< Rss (bytes)
  std::uint64_t anon_huge_pages = 0; ///< AnonHugePages (bytes) backing us
  std::uint64_t shmem_pmd_mapped = 0;
  std::uint64_t private_hugetlb = 0; ///< Private_Hugetlb (bytes)
  std::uint64_t shared_hugetlb = 0;

  static SmapsRollup capture(const std::string& path = "/proc/self/smaps_rollup");
  static SmapsRollup parse(std::string_view text);

  /// Total bytes of this process resident on any kind of huge page.
  [[nodiscard]] std::uint64_t total_huge_bytes() const noexcept {
    return anon_huge_pages + shmem_pmd_mapped + private_hugetlb +
           shared_hugetlb;
  }
};

/// Count bytes of a specific VMA range currently backed by huge pages, by
/// scanning /proc/self/smaps. Slower than smaps_rollup but range-precise;
/// used by tests and by MappedRegion::resident_huge_bytes().
[[nodiscard]] std::uint64_t range_huge_bytes(
    const void* addr, std::size_t len,
    const std::string& smaps_path = "/proc/self/smaps");

}  // namespace fhp::mem
