/// \file allocator.hpp
/// \brief STL-compatible allocator over an Arena, plus HugeBuffer.
///
/// HugeAllocator lets standard containers (std::vector, std::map, ...)
/// live on huge-page-backed memory:
///
///   fhp::mem::Arena arena(fhp::mem::HugePolicy::kThp);
///   std::vector<double, fhp::mem::HugeAllocator<double>> v{
///       fhp::mem::HugeAllocator<double>(arena)};
///
/// Because the arena is monotonic, deallocate() is a no-op: the memory is
/// reclaimed when the arena is released. That is the FLASH pattern —
/// allocate the mesh once, run, tear everything down together.

#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <type_traits>

#include "mem/arena.hpp"
#include "mem/page_pool.hpp"
#include "support/error.hpp"

namespace fhp::mem {

/// C++17/20 allocator over an Arena (non-owning reference).
template <typename T>
class HugeAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::false_type;

  /// Bind to an arena; defaults to the process-wide global arena.
  explicit HugeAllocator(Arena& arena = global_arena()) noexcept
      : arena_(&arena) {}

  template <typename U>
  HugeAllocator(const HugeAllocator<U>& other) noexcept
      : arena_(&other.arena()) {}

  [[nodiscard]] T* allocate(size_type n) {
    FHP_REQUIRE(n <= std::numeric_limits<size_type>::max() / sizeof(T),
                "allocator byte count overflows size_t");
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, size_type n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] Arena& arena() const noexcept { return *arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const HugeAllocator<U>& other) const noexcept {
    return arena_ == &other.arena();
  }

 private:
  Arena* arena_;
};

/// A fixed-size typed buffer carved from a PagePool as a single
/// allocation — used for the really big arrays (unk, the EOS table) where
/// we want to know, per buffer, exactly what page regime backs it and
/// what the pool decided about its placement.
template <typename T>
class HugeBuffer {
 public:
  HugeBuffer() = default;

  /// Allocate room for \p count elements under \p policy (value-initialized)
  /// from \p pool. The pool is always explicit — callers inside a runtime
  /// pass `runtime.page_pool()`; code genuinely outside any runtime uses
  /// `rt::Runtime::process_default().page_pool()`.
  HugeBuffer(std::size_t count, HugePolicy policy, PagePool& pool)
      : alloc_([&] {
          FHP_REQUIRE(
              count <= std::numeric_limits<std::size_t>::max() / sizeof(T),
              "HugeBuffer byte count overflows size_t");
          return pool.alloc(count * sizeof(T), policy);
        }()),
        count_(count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "HugeBuffer requires trivially destructible elements");
    // mmap memory is zero-filled; for trivial T that is value-initialized.
  }

  [[nodiscard]] T* data() noexcept { return static_cast<T*>(alloc_.data()); }
  [[nodiscard]] const T* data() const noexcept {
    return static_cast<const T*>(alloc_.data());
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data(), count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data(), count_};
  }

  /// The region backing this buffer (for verification/reporting).
  [[nodiscard]] const MappedRegion& region() const noexcept {
    return alloc_.region();
  }

  /// The pool allocation (region + placement decision) backing the buffer.
  [[nodiscard]] const PoolAllocation& allocation() const noexcept {
    return alloc_;
  }

 private:
  PoolAllocation alloc_;
  std::size_t count_ = 0;
};

}  // namespace fhp::mem
