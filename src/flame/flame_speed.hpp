/// \file flame_speed.hpp
/// \brief Laminar flame speeds and turbulent/buoyancy enhancement.
///
/// The supernova model propagates a sub-grid flame at a prescribed speed.
/// Laminar speeds come from "the tabulated results of previous
/// calculations" (Timmes & Woosley 1992; Chamulak, Brown & Timmes 2007
/// for the 22Ne speedup): we implement the TW92 power-law fit for C/O
/// matter, tabulate it on a (log rho, X_C) grid exactly the way FLASH
/// consumes such tables, and interpolate bilinearly. Buoyancy/turbulence
/// enhancement follows the max-speed prescription of Townsley et al. 2007:
/// s_eff = max(s_lam, c_b * sqrt(A g L)) with Atwood number A, local
/// gravity g and the resolution scale L.

#pragma once

#include <vector>

namespace fhp::flame {

/// Timmes & Woosley (1992) laminar C/O flame-speed fit [cm/s]:
///   s = 92 km/s * (rho / 2e9)^0.805 * (X_C / 0.5)^0.889
/// with a mild 22Ne enhancement factor per Chamulak et al. (2007).
[[nodiscard]] double laminar_speed_fit(double rho, double x_carbon,
                                       double x_ne22 = 0.0);

/// Tabulated flame speeds on a (log10 rho, X_C) grid with bilinear
/// interpolation — the production representation.
class FlameSpeedTable {
 public:
  /// Build from the analytic fit over rho in [10^lrho_min, 10^lrho_max],
  /// X_C in [xc_min, xc_max].
  FlameSpeedTable(double lrho_min = 6.0, double lrho_max = 10.0,
                  int nrho = 81, double xc_min = 0.2, double xc_max = 0.8,
                  int nxc = 25, double x_ne22 = 0.0);

  /// Interpolated laminar speed [cm/s]; inputs clamped to the table range
  /// (FLASH clamps too — flames only exist in a finite density window).
  [[nodiscard]] double speed(double rho, double x_carbon) const;

  [[nodiscard]] int nrho() const noexcept { return nrho_; }
  [[nodiscard]] int nxc() const noexcept { return nxc_; }

 private:
  double lrho_min_, lrho_max_;
  int nrho_;
  double xc_min_, xc_max_;
  int nxc_;
  std::vector<double> table_;  // [ixc][irho]
};

/// Buoyancy-compensated effective speed (Townsley et al. 2007):
/// s_eff = max(s_lam, c_b sqrt(A g L)). Atwood number A ~ 0.2 DeltaRho/Rho
/// for CO ash; c_b = 0.5 is the calibrated constant.
[[nodiscard]] double enhanced_speed(double s_laminar, double atwood,
                                    double gravity, double length,
                                    double c_b = 0.5);

}  // namespace fhp::flame
