#include "flame/flame_speed.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fhp::flame {

double laminar_speed_fit(double rho, double x_carbon, double x_ne22) {
  FHP_REQUIRE(rho > 0.0, "flame speed needs a positive density");
  FHP_REQUIRE(x_carbon >= 0.0 && x_carbon <= 1.0,
              "carbon fraction outside [0,1]");
  const double base = 92.0e5 * std::pow(rho / 2.0e9, 0.805) *
                      std::pow(std::max(1e-3, x_carbon) / 0.5, 0.889);
  // Chamulak et al. 2007: each 0.01 of 22Ne speeds the flame ~3-5%.
  const double ne_boost = 1.0 + 4.0 * x_ne22;
  return base * ne_boost;
}

FlameSpeedTable::FlameSpeedTable(double lrho_min, double lrho_max, int nrho,
                                 double xc_min, double xc_max, int nxc,
                                 double x_ne22)
    : lrho_min_(lrho_min),
      lrho_max_(lrho_max),
      nrho_(nrho),
      xc_min_(xc_min),
      xc_max_(xc_max),
      nxc_(nxc) {
  FHP_REQUIRE(nrho >= 2 && nxc >= 2, "flame table needs >= 2 points per axis");
  FHP_REQUIRE(lrho_max > lrho_min && xc_max > xc_min,
              "flame table bounds inverted");
  table_.resize(static_cast<std::size_t>(nrho) * static_cast<std::size_t>(nxc));
  const double dlr = (lrho_max - lrho_min) / (nrho - 1);
  const double dxc = (xc_max - xc_min) / (nxc - 1);
  for (int c = 0; c < nxc; ++c) {
    for (int r = 0; r < nrho; ++r) {
      const double rho = std::pow(10.0, lrho_min + r * dlr);
      const double xc = xc_min + c * dxc;
      table_[static_cast<std::size_t>(c) * static_cast<std::size_t>(nrho) +
             static_cast<std::size_t>(r)] =
          laminar_speed_fit(rho, xc, x_ne22);
    }
  }
}

double FlameSpeedTable::speed(double rho, double x_carbon) const {
  const double dlr = (lrho_max_ - lrho_min_) / (nrho_ - 1);
  const double dxc = (xc_max_ - xc_min_) / (nxc_ - 1);
  const double lr =
      std::clamp(std::log10(std::max(rho, 1e-300)), lrho_min_, lrho_max_);
  const double xc = std::clamp(x_carbon, xc_min_, xc_max_);

  const double fr = (lr - lrho_min_) / dlr;
  const double fc = (xc - xc_min_) / dxc;
  const int ir = std::min(nrho_ - 2, static_cast<int>(fr));
  const int ic = std::min(nxc_ - 2, static_cast<int>(fc));
  const double ur = fr - ir;
  const double uc = fc - ic;

  auto at = [&](int c, int r) {
    return table_[static_cast<std::size_t>(c) *
                      static_cast<std::size_t>(nrho_) +
                  static_cast<std::size_t>(r)];
  };
  return (1 - ur) * (1 - uc) * at(ic, ir) + ur * (1 - uc) * at(ic, ir + 1) +
         (1 - ur) * uc * at(ic + 1, ir) + ur * uc * at(ic + 1, ir + 1);
}

double enhanced_speed(double s_laminar, double atwood, double gravity,
                      double length, double c_b) {
  const double s_buoy =
      c_b * std::sqrt(std::max(0.0, atwood * gravity * length));
  return std::max(s_laminar, s_buoy);
}

}  // namespace fhp::flame
