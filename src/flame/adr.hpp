/// \file adr.hpp
/// \brief Advection-diffusion-reaction model flame (Vladimirova et al. 2006).
///
/// The physical flame front (< 1 cm wide at WD densities) cannot be
/// resolved on a ~km grid; FLASH propagates a reaction progress variable
/// phi in [0 (fuel), 1 (ash)] instead:
///
///   d phi / dt + u . grad phi = kappa lap(phi) + R(phi) / tau
///
/// Advection is done by the hydro unit (phi is a mass scalar); this class
/// does the diffusion-reaction part with a *bistable* (sharpened-KPP)
/// source R = f phi (1 - phi)(phi - 1/4). The bistable front is pushed,
/// not pulled, so its discrete speed matches the analytic traveling-wave
/// speed v = sqrt(kappa f / 2) (1 - 2a) instead of overshooting it — the
/// same reason Vladimirova et al. replace plain KPP with sKPP in FLASH.
/// Choosing kappa = s b dx / 2 and f = 16 s / (b dx) (with a = 1/4) gives
/// front speed exactly s and width delta = sqrt(2 kappa / f) = b dx / 4,
/// i.e. a front resolved over ~b zones (b = 4 by default).
///
/// Burning releases q_burn erg per gram of fuel consumed; consumed fuel
/// moves from the carbon scalar into the ash scalar.

#pragma once

#include "flame/flame_speed.hpp"
#include "mesh/amr_mesh.hpp"
#include "tlb/trace.hpp"

namespace fhp::flame {

/// Configuration of the ADR flame.
struct AdrOptions {
  int phi_scalar = 0;     ///< scalar slot (relative to kFirstScalar) of phi
  int fuel_scalar = 1;    ///< scalar slot of the carbon (fuel) fraction
  int ash_scalar = 2;     ///< scalar slot of the ash fraction
  double front_zones = 4.0;  ///< front width b in zones
  double q_burn = 4.0e17;    ///< energy release [erg/g of fuel burned]
  double rho_min = 1.0e6;    ///< no burning below this density (quenching)
  double phi_floor = 1e-12;  ///< clamp tolerance
};

/// The flame operator. Advance once per time step after the hydro sweeps.
class AdrFlame {
 public:
  AdrFlame(mesh::AmrMesh& mesh, const FlameSpeedTable& speeds,
           AdrOptions options = {});

  /// One explicit diffusion-reaction step of dt on every leaf. Guard
  /// cells must be current. Deposits nuclear energy into ener/eint and
  /// converts fuel to ash where phi advanced. Runs block-parallel over
  /// the mesh arena's lanes; each block touches only its own storage,
  /// and per-block energy partials are summed serially in leaf order so
  /// the released-energy total is identical for every thread count.
  void advance(double dt);

  // --- task-graph entry points -------------------------------------------
  // advance(dt) is begin_advance + a parallel loop over advance_block_task
  // + finish_advance; the task-graph driver (sim::StepGraph) submits the
  // per-block piece as task bodies instead, calling begin/finish on the
  // driver thread around the graph run.

  /// Size the per-lane scratch and zero the per-block energy partials for
  /// \p nleaves leaf blocks. Driver-thread, setup-time (allocates only on
  /// lane-count or leaf-count change).
  void begin_advance(std::size_t nleaves);

  /// ADR update of one leaf: \p leaf_index is the block's position in
  /// leaves_morton() (selects its energy-partial slot), \p b the block id.
  void advance_block_task(std::size_t leaf_index, int b, double dt, int lane)
      FHP_REQUIRES_REGION;

  /// Fold the per-block energy partials into energy_released(), serially
  /// in leaf order — bit-identical for every lane count and steal order.
  void finish_advance();

  /// Total nuclear energy released so far [erg].
  [[nodiscard]] double energy_released() const noexcept {
    return energy_released_;
  }

  [[nodiscard]] const AdrOptions& options() const noexcept { return options_; }

  /// Replay the memory/compute behaviour of advance() for one block.
  void trace_advance_block(tlb::Tracer& tracer, int b) const;

 private:
  /// Both passes over one block; \p phi_new is per-lane scratch. Returns
  /// the block's released energy [erg].
  /// One leaf block's ADR update; runs as a region-lambda body on a pool
  /// lane (writes only block b and its own lane scratch).
  double advance_block(int b, double dt, std::vector<double>& phi_new)
      FHP_REQUIRES_REGION;

  mesh::AmrMesh& mesh_;
  const FlameSpeedTable& speeds_;
  AdrOptions options_;
  double energy_released_ = 0.0;
  std::size_t scratch_size_ = 0;  ///< zones (incl. guards) per block

  /// Per-lane phi scratch and per-block energy partials, cached across
  /// advance() calls (re-sized only when the arena lane count changes) so a
  /// timestep costs no steady-state allocations.
  std::vector<std::vector<double>> lane_scratch_;
  std::vector<double> block_energy_;
};

}  // namespace fhp::flame
