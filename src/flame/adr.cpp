#include "flame/adr.hpp"

#include <algorithm>
#include <cmath>

#include "par/parallel.hpp"
#include "support/error.hpp"

namespace fhp::flame {

using mesh::var::kDens;
using mesh::var::kEint;
using mesh::var::kEner;
using mesh::var::kFirstScalar;

AdrFlame::AdrFlame(mesh::AmrMesh& mesh, const FlameSpeedTable& speeds,
                   AdrOptions options)
    : mesh_(mesh), speeds_(speeds), options_(options) {
  const mesh::MeshConfig& c = mesh_.config();
  FHP_REQUIRE(options_.phi_scalar >= 0 && options_.phi_scalar < c.nscalars,
              "phi scalar slot outside nscalars");
  FHP_REQUIRE(options_.fuel_scalar < c.nscalars &&
                  options_.ash_scalar < c.nscalars,
              "fuel/ash scalar slots outside nscalars");
  scratch_size_ = static_cast<std::size_t>(c.ni()) *
                  static_cast<std::size_t>(c.nj()) *
                  static_cast<std::size_t>(c.nk());
}

void AdrFlame::advance(double dt) {
  const std::vector<int> leaves = mesh_.tree().leaves_morton();
  begin_advance(leaves.size());
  mesh_.arena().parallel_for(leaves.size(), [&](int lane, std::size_t n) {
    RegionWitness witness;  // region lambda body: lane writer role
    advance_block_task(n, leaves[n], dt, lane);
  });
  finish_advance();
}

void AdrFlame::begin_advance(std::size_t nleaves) {
  // Per-lane phi scratch, plus a per-block slot for the energy partial:
  // the serial leaf-order sum in finish_advance makes the total
  // independent of the lane/timing in which blocks completed. Both
  // buffers persist across timesteps; the scratch is rebuilt only when
  // the lane count changes.
  const auto lanes = static_cast<std::size_t>(mesh_.arena().lanes());
  if (lane_scratch_.size() != lanes) {
    lane_scratch_.assign(lanes, std::vector<double>(scratch_size_));
  }
  block_energy_.assign(nleaves, 0.0);
}

void AdrFlame::advance_block_task(std::size_t leaf_index, int b, double dt,
                                  int lane) {
  block_energy_[leaf_index] =
      advance_block(b, dt, lane_scratch_[static_cast<std::size_t>(lane)]);
}

void AdrFlame::finish_advance() {
  for (const double e : block_energy_) energy_released_ += e;
}

double AdrFlame::advance_block(int b, double dt,
                               std::vector<double>& phi_new) {
  const mesh::MeshConfig& c = mesh_.config();
  mesh::UnkContainer& unk = mesh_.unk();
  const int vphi = kFirstScalar + options_.phi_scalar;
  const int vfuel = kFirstScalar + options_.fuel_scalar;
  const int vash = kFirstScalar + options_.ash_scalar;
  double energy = 0.0;

  auto scratch = [&](int i, int j, int k) -> double& {
    return phi_new[static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(c.ni()) *
                       (static_cast<std::size_t>(j) +
                        static_cast<std::size_t>(c.nj()) *
                            static_cast<std::size_t>(k))];
  };

  {
    const double hx = mesh_.dx(b, 0);

    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const double rho = unk.at(kDens, i, j, k, b);
          const double phi =
              std::clamp(unk.at(vphi, i, j, k, b), 0.0, 1.0);
          if (rho < options_.rho_min) {
            scratch(i, j, k) = phi;  // quenched: no burning, no diffusion
            continue;
          }
          // The laminar speed depends on the *unburned* carbon abundance.
          // The fuel scalar in a partially burned zone is X_C,0 (1 - phi),
          // so divide the progress variable back out (FLASH passes the
          // unburned composition to its flame-speed table the same way).
          const double fuel = std::clamp(unk.at(vfuel, i, j, k, b), 0.0, 1.0);
          const double xc =
              std::clamp(fuel / std::max(1.0 - phi, 1e-6), 0.0, 1.0);
          const double s = speeds_.speed(rho, xc);
          const double bzones = options_.front_zones;
          // Bistable calibration (see adr.hpp): kappa = s b dx / 2 and
          // f = 16 s / (b dx) give an exact traveling-wave speed s and a
          // front width of ~b zones.
          const double kappa = s * bzones * hx / 2.0;
          const double f = 16.0 * s / (bzones * hx);

          // Explicit Laplacian (uniform spacing within a block).
          double lap = (unk.at(vphi, i + 1, j, k, b) - 2.0 * phi +
                        unk.at(vphi, i - 1, j, k, b)) /
                       (hx * hx);
          if (c.ndim >= 2) {
            const double hy = mesh_.dx(b, 1);
            lap += (unk.at(vphi, i, j + 1, k, b) - 2.0 * phi +
                    unk.at(vphi, i, j - 1, k, b)) /
                   (hy * hy);
          }
          if (c.ndim >= 3) {
            const double hz = mesh_.dx(b, 2);
            lap += (unk.at(vphi, i, j, k + 1, b) - 2.0 * phi +
                    unk.at(vphi, i, j, k - 1, b)) /
                   (hz * hz);
          }
          // Bistable (sharpened-KPP-like) source: unlike plain KPP, the
          // front is "pushed", so the discrete propagation speed matches
          // the analytic one instead of running ahead of it, and small
          // diffusive leakage of phi burns back to zero instead of
          // igniting spuriously (the reason FLASH uses sKPP).
          const double reaction = f * phi * (1.0 - phi) * (phi - 0.25);
          double next = phi + dt * (kappa * lap + reaction);
          next = std::clamp(next, 0.0, 1.0);
          scratch(i, j, k) = next;
        }
      }
    }

    // Commit: energy release and fuel->ash conversion follow d(phi).
    for (int k = c.klo(); k < c.khi(); ++k) {
      for (int j = c.jlo(); j < c.jhi(); ++j) {
        for (int i = c.ilo(); i < c.ihi(); ++i) {
          const double phi_old =
              std::clamp(unk.at(vphi, i, j, k, b), 0.0, 1.0);
          const double phi = scratch(i, j, k);
          unk.at(vphi, i, j, k, b) = phi;
          const double dphi = phi - phi_old;
          if (dphi <= options_.phi_floor) continue;

          const double fuel = std::clamp(unk.at(vfuel, i, j, k, b), 0.0, 1.0);
          const double burned = fuel * dphi;
          unk.at(vfuel, i, j, k, b) = fuel - burned;
          unk.at(vash, i, j, k, b) =
              std::clamp(unk.at(vash, i, j, k, b) + burned, 0.0, 1.0);

          const double dq = options_.q_burn * burned;  // erg/g
          unk.at(kEner, i, j, k, b) += dq;
          unk.at(kEint, i, j, k, b) += dq;
          const double rho = unk.at(kDens, i, j, k, b);
          energy += dq * rho * mesh_.cell_volume(b, i, j, k);
        }
      }
    }
  }
  return energy;
}

void AdrFlame::trace_advance_block(tlb::Tracer& tracer, int b) const {
  if (!tracer.enabled()) return;
  const mesh::MeshConfig& c = mesh_.config();
  const mesh::UnkContainer& unk = mesh_.unk();
  // Pass 1 reads phi (5/7-point stencil), dens, fuel; pass 2 writes phi,
  // fuel, ash, ener, eint. The stencil re-touches the zone vector plus
  // one neighbour in each direction — approximated as nread variables.
  unk.trace_sweep(tracer, b, c.ilo(), c.ihi(), c.jlo(), c.jhi(), c.klo(),
                  c.khi(), 4 + 2 * c.ndim, 5);
  const auto zones = static_cast<std::uint64_t>(c.nxb) *
                     static_cast<std::uint64_t>(c.nyb) *
                     static_cast<std::uint64_t>(c.nzb);
  tracer.compute(zones * 60, 0);
}

}  // namespace fhp::flame
