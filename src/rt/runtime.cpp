#include "rt/runtime.hpp"

// This file is the one licensed caller of the retired process-singleton
// accessors (PerfContext::global, global_page_pool, default_layout):
// Runtime::process_default() wraps them to reproduce pre-Runtime
// behavior bit-for-bit, and everything else reaches them only through a
// Runtime. tools/flashhp_lint.py exempts this file from the
// singleton-instance rule for exactly that reason.

namespace fhp::rt {

Runtime::Runtime(RuntimeOptions options)
    : owned_perf_(std::make_unique<perf::PerfContext>()),
      perf_(owned_perf_.get()),
      log_tag_(std::move(options.log_tag)) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
  } else {
    owned_pool_ = std::make_unique<mem::PagePool>();
    pool_ = owned_pool_.get();
  }
  owned_arena_ = std::make_unique<par::ExecArena>(options.lanes);
  arena_ = owned_arena_.get();

  // Snapshot the configuration: explicit override, else the process
  // resolution order, captured once so later set_default_* calls (or
  // env mutations) cannot skew a constructed tenant.
  layout_ = options.layout.has_value() ? *options.layout
                                       : mesh::default_layout();
  policy_ = options.policy.has_value() ? *options.policy
                                       : mem::default_policy();

  env_.log_tag = log_tag_.empty() ? nullptr : log_tag_.c_str();
  arena_->set_lane_env(&env_);
  if (options.trace_sink != nullptr) set_trace_sink(options.trace_sink);
}

Runtime::Runtime(ProcessTag)
    : perf_(&perf::PerfContext::global()),
      pool_(&mem::global_page_pool()),
      arena_(&par::process_arena()) {
  // layout_/policy_ stay nullopt: resolved per call, like the old
  // default arguments. No lane env is installed on the process arena
  // unless set_trace_sink() is called — legacy free-function users see
  // exactly the old behavior (ambient sink, untagged logs).
}

Runtime::~Runtime() {
  if (owned_arena_ == nullptr && arena_ != nullptr) {
    // process_default teardown (static destruction): leave the process
    // arena as we found it.
    if (arena_->lane_env() == &env_) arena_->set_lane_env(nullptr);
  }
}

Runtime& Runtime::process_default() {
  static Runtime runtime{ProcessTag{}};
  return runtime;
}

int Runtime::lanes() const noexcept { return arena_->lanes(); }

mesh::LayoutKind Runtime::layout() const {
  if (layout_.has_value()) return *layout_;
  return mesh::default_layout();
}

mem::HugePolicy Runtime::huge_policy() const {
  if (policy_.has_value()) return *policy_;
  return mem::default_policy();
}

void Runtime::set_trace_sink(trace::Sink* sink) noexcept {
  env_.trace_sink = sink;
  env_.bind_trace = sink != nullptr;
  // Deferred for process_default so the legacy path stays env-free
  // until a per-runtime sink is actually requested.
  arena_->set_lane_env(&env_);
}

trace::Sink* Runtime::trace_sink() const noexcept { return env_.trace_sink; }

Runtime::BindScope::BindScope(const Runtime& runtime) {
  if (runtime.env_.bind_trace) sink_.emplace(runtime.env_.trace_sink);
  if (!runtime.log_tag_.empty()) tag_.emplace(runtime.log_tag_.c_str());
}

}  // namespace fhp::rt
