/// \file runtime.hpp
/// \brief fhp::rt::Runtime — the explicit per-tenant runtime context.
///
/// The paper measures one FLASH instance per node, but the roadmap's
/// north star is a service batching many concurrent simulations per
/// process. The blockers were process singletons: one PerfContext, one
/// page pool, one lane pool with one region guard, one resolved layout,
/// one ambient trace install. Runtime packages those services as an
/// explicitly constructed context — each simulation tenant owns (or is
/// handed) its own copy, so two sim::Drivers in one process keep their
/// counters, allocations, parallel regions, trace spans and log lines
/// fully separate, and each run is bit-identical to the same run solo.
///
/// What a Runtime owns:
///   - a perf::PerfContext (counters, regions, publish snapshots),
///   - a mem::PagePool handle — private by default, or a shared pool
///     injected via RuntimeOptions::pool (tenants sharing one reserved
///     hugetlb inventory),
///   - a par::ExecArena — its own lane pool lease and region guard, so
///     concurrent runtimes never trip each other's nested-region
///     ConfigError,
///   - the resolved mesh::LayoutKind / mem::HugePolicy configuration
///     snapshot (explicit override, else the process resolution order:
///     runtime params / environment / built-in default),
///   - the trace sink and log tag its driver thread and pool lanes bind
///     while working (see trace::SinkBinding and fhp::LogTagScope).
///
/// What stays process-wide, by design: the Logger sink itself (one log
/// stream per process, like FLASH's flash.log — runtimes are told apart
/// by their log tag), signal/environment state, and the runtime-params
/// registry. See DESIGN.md "Runtime context model".
///
/// `Runtime::process_default()` is the compatibility tenant: it wraps
/// the historical process singletons (global PerfContext, global page
/// pool, the process arena whose lane count tracks par::threads(), the
/// dynamically re-resolved default layout/policy) and reproduces the
/// pre-Runtime behavior bit-for-bit. Its implementation file is the one
/// place allowed to call those singleton accessors — the lint rule
/// `singleton-instance` bans new call sites everywhere else.

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mem/huge_policy.hpp"
#include "mem/page_pool.hpp"
#include "mesh/layout.hpp"
#include "par/parallel.hpp"
#include "perf/perf_context.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace fhp::rt {

/// Construction-time configuration for a Runtime. Everything defaults
/// to "resolve like the process would": 0 lanes = the par thread-count
/// resolution order, nullopt layout/policy = the mesh/mem resolution
/// orders, null pool = a private pool auto-initialized from the
/// environment on first allocation.
struct RuntimeOptions {
  /// Lane count for this runtime's ExecArena; 0 = resolve
  /// set_threads / FLASHHP_THREADS / 1, once, at construction.
  int lanes = 0;
  /// Block-data layout; nullopt = snapshot the process resolution order
  /// (set_default_layout / FLASHHP_LAYOUT / var_major) at construction.
  std::optional<mesh::LayoutKind> layout;
  /// Huge-page policy; nullopt = snapshot the process resolution order
  /// (set_default_policy / FLASHHP_HPAGE_TYPE / kNone) at construction.
  std::optional<mem::HugePolicy> policy;
  /// Non-null: carve from this shared pool instead of a private one.
  /// The pool must outlive the runtime.
  mem::PagePool* pool = nullptr;
  /// Initial trace sink (see set_trace_sink); usually installed later,
  /// after the obs::Telemetry for this runtime exists.
  trace::Sink* trace_sink = nullptr;
  /// Non-empty: log lines from this runtime's driver thread and lanes
  /// are prefixed "[tag]" so interleaved-sim logs stay attributable.
  std::string log_tag;
};

/// The per-tenant context. Not copyable or movable: meshes, drivers and
/// arenas hold references into it, so construct it first and keep it
/// alive past everything built on it.
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The compatibility tenant wrapping the historical process
  /// singletons; reproduces pre-Runtime behavior bit-for-bit (its
  /// layout/policy re-resolve dynamically instead of snapshotting, and
  /// its arena lane count tracks par::threads()).
  [[nodiscard]] static Runtime& process_default();

  /// This runtime's performance counters and region registry.
  [[nodiscard]] perf::PerfContext& perf() const noexcept { return *perf_; }

  /// The pool this runtime's unk array, EOS table and arenas carve from.
  [[nodiscard]] mem::PagePool& page_pool() const noexcept { return *pool_; }

  /// The execution arena this runtime's parallel regions run on.
  [[nodiscard]] par::ExecArena& arena() const noexcept { return *arena_; }

  /// Lane count of the arena (process_default: tracks par::threads()).
  [[nodiscard]] int lanes() const noexcept;

  /// The resolved block-data layout (process_default: re-resolved on
  /// every call, like the old `mesh::default_layout()` defaults).
  [[nodiscard]] mesh::LayoutKind layout() const;

  /// The resolved huge-page policy (process_default: re-resolved on
  /// every call).
  [[nodiscard]] mem::HugePolicy huge_policy() const;

  /// Install (or clear, with null) the sink receiving this runtime's
  /// spans and step marks. Setup-time, driver thread, outside evolve():
  /// the driver binds it per step and the arena applies it on every
  /// lane per region. Unlike the ambient trace::try_install, this is
  /// per-runtime — two runtimes trace to two sinks concurrently.
  void set_trace_sink(trace::Sink* sink) noexcept;
  [[nodiscard]] trace::Sink* trace_sink() const noexcept;

  /// The tag prefixing this runtime's log lines ("" = untagged).
  [[nodiscard]] const std::string& log_tag() const noexcept {
    return log_tag_;
  }

  /// RAII: binds the runtime's trace sink (when one is set) and log tag
  /// (when non-empty) to the calling thread. The driver opens one over
  /// each step; anything else running work for a runtime on its own
  /// thread (setup, checkpointing, report rendering) can do the same.
  /// Scopes nest and restore on destruction.
  class BindScope {
   public:
    explicit BindScope(const Runtime& runtime);
    BindScope(const BindScope&) = delete;
    BindScope& operator=(const BindScope&) = delete;

   private:
    std::optional<trace::SinkBinding> sink_;
    std::optional<LogTagScope> tag_;
  };

 private:
  struct ProcessTag {};
  explicit Runtime(ProcessTag);

  // Owned service (null when wrapping a shared/global one) + the active
  // handle, which is never null after construction.
  std::unique_ptr<perf::PerfContext> owned_perf_;
  perf::PerfContext* perf_ = nullptr;
  std::unique_ptr<mem::PagePool> owned_pool_;
  mem::PagePool* pool_ = nullptr;
  std::unique_ptr<par::ExecArena> owned_arena_;
  par::ExecArena* arena_ = nullptr;

  /// nullopt only on process_default: resolve dynamically.
  std::optional<mesh::LayoutKind> layout_;
  std::optional<mem::HugePolicy> policy_;

  std::string log_tag_;
  /// The per-lane environment the arena applies during regions; points
  /// at stable storage in this object.
  par::LaneEnv env_;
};

}  // namespace fhp::rt
