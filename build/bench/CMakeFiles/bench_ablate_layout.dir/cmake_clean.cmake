file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_layout.dir/bench_ablate_layout.cpp.o"
  "CMakeFiles/bench_ablate_layout.dir/bench_ablate_layout.cpp.o.d"
  "bench_ablate_layout"
  "bench_ablate_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
