# Empty compiler generated dependencies file for bench_ablate_layout.
# This may be replaced when dependencies are built.
