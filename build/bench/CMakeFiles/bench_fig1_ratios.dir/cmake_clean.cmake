file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ratios.dir/bench_fig1_ratios.cpp.o"
  "CMakeFiles/bench_fig1_ratios.dir/bench_fig1_ratios.cpp.o.d"
  "bench_fig1_ratios"
  "bench_fig1_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
