# Empty dependencies file for bench_fig1_ratios.
# This may be replaced when dependencies are built.
