file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_eos.dir/bench_table1_eos.cpp.o"
  "CMakeFiles/bench_table1_eos.dir/bench_table1_eos.cpp.o.d"
  "bench_table1_eos"
  "bench_table1_eos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_eos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
