# Empty dependencies file for bench_ablate_pagesize.
# This may be replaced when dependencies are built.
