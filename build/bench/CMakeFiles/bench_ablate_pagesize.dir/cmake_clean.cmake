file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_pagesize.dir/bench_ablate_pagesize.cpp.o"
  "CMakeFiles/bench_ablate_pagesize.dir/bench_ablate_pagesize.cpp.o.d"
  "bench_ablate_pagesize"
  "bench_ablate_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
