file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hydro.dir/bench_table2_hydro.cpp.o"
  "CMakeFiles/bench_table2_hydro.dir/bench_table2_hydro.cpp.o.d"
  "bench_table2_hydro"
  "bench_table2_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
