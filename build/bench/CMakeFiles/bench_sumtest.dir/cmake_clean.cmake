file(REMOVE_RECURSE
  "CMakeFiles/bench_sumtest.dir/bench_sumtest.cpp.o"
  "CMakeFiles/bench_sumtest.dir/bench_sumtest.cpp.o.d"
  "bench_sumtest"
  "bench_sumtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sumtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
