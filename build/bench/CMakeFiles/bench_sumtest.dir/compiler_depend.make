# Empty compiler generated dependencies file for bench_sumtest.
# This may be replaced when dependencies are built.
