file(REMOVE_RECURSE
  "CMakeFiles/tlb_explorer.dir/tlb_explorer.cpp.o"
  "CMakeFiles/tlb_explorer.dir/tlb_explorer.cpp.o.d"
  "tlb_explorer"
  "tlb_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
