
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/supernova2d.cpp" "examples/CMakeFiles/supernova2d.dir/supernova2d.cpp.o" "gcc" "examples/CMakeFiles/supernova2d.dir/supernova2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hydro/CMakeFiles/fhp_hydro.dir/DependInfo.cmake"
  "/root/repo/build/src/flame/CMakeFiles/fhp_flame.dir/DependInfo.cmake"
  "/root/repo/build/src/gravity/CMakeFiles/fhp_gravity.dir/DependInfo.cmake"
  "/root/repo/build/src/eos/CMakeFiles/fhp_eos.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/fhp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/fhp_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/fhp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fhp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
