file(REMOVE_RECURSE
  "CMakeFiles/supernova2d.dir/supernova2d.cpp.o"
  "CMakeFiles/supernova2d.dir/supernova2d.cpp.o.d"
  "supernova2d"
  "supernova2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernova2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
