# Empty compiler generated dependencies file for supernova2d.
# This may be replaced when dependencies are built.
