file(REMOVE_RECURSE
  "CMakeFiles/hugectl.dir/hugectl.cpp.o"
  "CMakeFiles/hugectl.dir/hugectl.cpp.o.d"
  "hugectl"
  "hugectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hugectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
