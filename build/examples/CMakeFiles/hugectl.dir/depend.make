# Empty dependencies file for hugectl.
# This may be replaced when dependencies are built.
