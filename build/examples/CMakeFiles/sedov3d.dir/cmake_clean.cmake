file(REMOVE_RECURSE
  "CMakeFiles/sedov3d.dir/sedov3d.cpp.o"
  "CMakeFiles/sedov3d.dir/sedov3d.cpp.o.d"
  "sedov3d"
  "sedov3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedov3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
