# Empty compiler generated dependencies file for sedov3d.
# This may be replaced when dependencies are built.
