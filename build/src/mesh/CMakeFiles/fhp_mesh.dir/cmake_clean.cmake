file(REMOVE_RECURSE
  "CMakeFiles/fhp_mesh.dir/amr_mesh.cpp.o"
  "CMakeFiles/fhp_mesh.dir/amr_mesh.cpp.o.d"
  "CMakeFiles/fhp_mesh.dir/tree.cpp.o"
  "CMakeFiles/fhp_mesh.dir/tree.cpp.o.d"
  "libfhp_mesh.a"
  "libfhp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
