# Empty dependencies file for fhp_mesh.
# This may be replaced when dependencies are built.
