file(REMOVE_RECURSE
  "libfhp_mesh.a"
)
