# Empty dependencies file for fhp_eos.
# This may be replaced when dependencies are built.
