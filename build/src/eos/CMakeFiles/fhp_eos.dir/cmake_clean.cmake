file(REMOVE_RECURSE
  "CMakeFiles/fhp_eos.dir/eos_table.cpp.o"
  "CMakeFiles/fhp_eos.dir/eos_table.cpp.o.d"
  "CMakeFiles/fhp_eos.dir/fermi_dirac.cpp.o"
  "CMakeFiles/fhp_eos.dir/fermi_dirac.cpp.o.d"
  "CMakeFiles/fhp_eos.dir/gamma_eos.cpp.o"
  "CMakeFiles/fhp_eos.dir/gamma_eos.cpp.o.d"
  "CMakeFiles/fhp_eos.dir/helmholtz_eos.cpp.o"
  "CMakeFiles/fhp_eos.dir/helmholtz_eos.cpp.o.d"
  "libfhp_eos.a"
  "libfhp_eos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_eos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
