file(REMOVE_RECURSE
  "libfhp_eos.a"
)
