# Empty dependencies file for fhp_support.
# This may be replaced when dependencies are built.
