
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/error.cpp" "src/support/CMakeFiles/fhp_support.dir/error.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/error.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/fhp_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/fhp_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/runtime_params.cpp" "src/support/CMakeFiles/fhp_support.dir/runtime_params.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/runtime_params.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/support/CMakeFiles/fhp_support.dir/string_util.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/string_util.cpp.o.d"
  "/root/repo/src/support/table_writer.cpp" "src/support/CMakeFiles/fhp_support.dir/table_writer.cpp.o" "gcc" "src/support/CMakeFiles/fhp_support.dir/table_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
