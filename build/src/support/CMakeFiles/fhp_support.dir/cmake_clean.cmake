file(REMOVE_RECURSE
  "CMakeFiles/fhp_support.dir/error.cpp.o"
  "CMakeFiles/fhp_support.dir/error.cpp.o.d"
  "CMakeFiles/fhp_support.dir/log.cpp.o"
  "CMakeFiles/fhp_support.dir/log.cpp.o.d"
  "CMakeFiles/fhp_support.dir/rng.cpp.o"
  "CMakeFiles/fhp_support.dir/rng.cpp.o.d"
  "CMakeFiles/fhp_support.dir/runtime_params.cpp.o"
  "CMakeFiles/fhp_support.dir/runtime_params.cpp.o.d"
  "CMakeFiles/fhp_support.dir/string_util.cpp.o"
  "CMakeFiles/fhp_support.dir/string_util.cpp.o.d"
  "CMakeFiles/fhp_support.dir/table_writer.cpp.o"
  "CMakeFiles/fhp_support.dir/table_writer.cpp.o.d"
  "libfhp_support.a"
  "libfhp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
