file(REMOVE_RECURSE
  "libfhp_support.a"
)
