file(REMOVE_RECURSE
  "CMakeFiles/fhp_mem.dir/arena.cpp.o"
  "CMakeFiles/fhp_mem.dir/arena.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/huge_policy.cpp.o"
  "CMakeFiles/fhp_mem.dir/huge_policy.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/hugeadm.cpp.o"
  "CMakeFiles/fhp_mem.dir/hugeadm.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/mapped_region.cpp.o"
  "CMakeFiles/fhp_mem.dir/mapped_region.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/meminfo.cpp.o"
  "CMakeFiles/fhp_mem.dir/meminfo.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/page_size.cpp.o"
  "CMakeFiles/fhp_mem.dir/page_size.cpp.o.d"
  "CMakeFiles/fhp_mem.dir/thp.cpp.o"
  "CMakeFiles/fhp_mem.dir/thp.cpp.o.d"
  "libfhp_mem.a"
  "libfhp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
