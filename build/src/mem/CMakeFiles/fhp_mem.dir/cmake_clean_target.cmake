file(REMOVE_RECURSE
  "libfhp_mem.a"
)
