# Empty compiler generated dependencies file for fhp_mem.
# This may be replaced when dependencies are built.
