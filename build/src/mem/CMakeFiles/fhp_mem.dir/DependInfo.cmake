
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/arena.cpp" "src/mem/CMakeFiles/fhp_mem.dir/arena.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/arena.cpp.o.d"
  "/root/repo/src/mem/huge_policy.cpp" "src/mem/CMakeFiles/fhp_mem.dir/huge_policy.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/huge_policy.cpp.o.d"
  "/root/repo/src/mem/hugeadm.cpp" "src/mem/CMakeFiles/fhp_mem.dir/hugeadm.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/hugeadm.cpp.o.d"
  "/root/repo/src/mem/mapped_region.cpp" "src/mem/CMakeFiles/fhp_mem.dir/mapped_region.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/mapped_region.cpp.o.d"
  "/root/repo/src/mem/meminfo.cpp" "src/mem/CMakeFiles/fhp_mem.dir/meminfo.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/meminfo.cpp.o.d"
  "/root/repo/src/mem/page_size.cpp" "src/mem/CMakeFiles/fhp_mem.dir/page_size.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/page_size.cpp.o.d"
  "/root/repo/src/mem/thp.cpp" "src/mem/CMakeFiles/fhp_mem.dir/thp.cpp.o" "gcc" "src/mem/CMakeFiles/fhp_mem.dir/thp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
