file(REMOVE_RECURSE
  "libfhp_sim.a"
)
