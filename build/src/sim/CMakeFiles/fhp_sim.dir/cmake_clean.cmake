file(REMOVE_RECURSE
  "CMakeFiles/fhp_sim.dir/checkpoint.cpp.o"
  "CMakeFiles/fhp_sim.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fhp_sim.dir/driver.cpp.o"
  "CMakeFiles/fhp_sim.dir/driver.cpp.o.d"
  "CMakeFiles/fhp_sim.dir/profiles.cpp.o"
  "CMakeFiles/fhp_sim.dir/profiles.cpp.o.d"
  "CMakeFiles/fhp_sim.dir/sedov.cpp.o"
  "CMakeFiles/fhp_sim.dir/sedov.cpp.o.d"
  "CMakeFiles/fhp_sim.dir/sedov_exact.cpp.o"
  "CMakeFiles/fhp_sim.dir/sedov_exact.cpp.o.d"
  "CMakeFiles/fhp_sim.dir/supernova.cpp.o"
  "CMakeFiles/fhp_sim.dir/supernova.cpp.o.d"
  "libfhp_sim.a"
  "libfhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
