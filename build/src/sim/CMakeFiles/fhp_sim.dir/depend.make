# Empty dependencies file for fhp_sim.
# This may be replaced when dependencies are built.
