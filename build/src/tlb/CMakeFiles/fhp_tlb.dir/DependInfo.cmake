
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/cache_model.cpp" "src/tlb/CMakeFiles/fhp_tlb.dir/cache_model.cpp.o" "gcc" "src/tlb/CMakeFiles/fhp_tlb.dir/cache_model.cpp.o.d"
  "/root/repo/src/tlb/machine.cpp" "src/tlb/CMakeFiles/fhp_tlb.dir/machine.cpp.o" "gcc" "src/tlb/CMakeFiles/fhp_tlb.dir/machine.cpp.o.d"
  "/root/repo/src/tlb/tlb_model.cpp" "src/tlb/CMakeFiles/fhp_tlb.dir/tlb_model.cpp.o" "gcc" "src/tlb/CMakeFiles/fhp_tlb.dir/tlb_model.cpp.o.d"
  "/root/repo/src/tlb/trace.cpp" "src/tlb/CMakeFiles/fhp_tlb.dir/trace.cpp.o" "gcc" "src/tlb/CMakeFiles/fhp_tlb.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/fhp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fhp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
