# Empty compiler generated dependencies file for fhp_tlb.
# This may be replaced when dependencies are built.
