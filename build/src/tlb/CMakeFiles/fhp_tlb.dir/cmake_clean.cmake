file(REMOVE_RECURSE
  "CMakeFiles/fhp_tlb.dir/cache_model.cpp.o"
  "CMakeFiles/fhp_tlb.dir/cache_model.cpp.o.d"
  "CMakeFiles/fhp_tlb.dir/machine.cpp.o"
  "CMakeFiles/fhp_tlb.dir/machine.cpp.o.d"
  "CMakeFiles/fhp_tlb.dir/tlb_model.cpp.o"
  "CMakeFiles/fhp_tlb.dir/tlb_model.cpp.o.d"
  "CMakeFiles/fhp_tlb.dir/trace.cpp.o"
  "CMakeFiles/fhp_tlb.dir/trace.cpp.o.d"
  "libfhp_tlb.a"
  "libfhp_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
