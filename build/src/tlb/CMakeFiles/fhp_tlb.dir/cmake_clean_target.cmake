file(REMOVE_RECURSE
  "libfhp_tlb.a"
)
