file(REMOVE_RECURSE
  "CMakeFiles/fhp_perf.dir/events.cpp.o"
  "CMakeFiles/fhp_perf.dir/events.cpp.o.d"
  "CMakeFiles/fhp_perf.dir/perf_event_backend.cpp.o"
  "CMakeFiles/fhp_perf.dir/perf_event_backend.cpp.o.d"
  "CMakeFiles/fhp_perf.dir/region.cpp.o"
  "CMakeFiles/fhp_perf.dir/region.cpp.o.d"
  "CMakeFiles/fhp_perf.dir/report.cpp.o"
  "CMakeFiles/fhp_perf.dir/report.cpp.o.d"
  "CMakeFiles/fhp_perf.dir/soft_counters.cpp.o"
  "CMakeFiles/fhp_perf.dir/soft_counters.cpp.o.d"
  "CMakeFiles/fhp_perf.dir/timers.cpp.o"
  "CMakeFiles/fhp_perf.dir/timers.cpp.o.d"
  "libfhp_perf.a"
  "libfhp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
