file(REMOVE_RECURSE
  "libfhp_perf.a"
)
