
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/events.cpp" "src/perf/CMakeFiles/fhp_perf.dir/events.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/events.cpp.o.d"
  "/root/repo/src/perf/perf_event_backend.cpp" "src/perf/CMakeFiles/fhp_perf.dir/perf_event_backend.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/perf_event_backend.cpp.o.d"
  "/root/repo/src/perf/region.cpp" "src/perf/CMakeFiles/fhp_perf.dir/region.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/region.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/perf/CMakeFiles/fhp_perf.dir/report.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/report.cpp.o.d"
  "/root/repo/src/perf/soft_counters.cpp" "src/perf/CMakeFiles/fhp_perf.dir/soft_counters.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/soft_counters.cpp.o.d"
  "/root/repo/src/perf/timers.cpp" "src/perf/CMakeFiles/fhp_perf.dir/timers.cpp.o" "gcc" "src/perf/CMakeFiles/fhp_perf.dir/timers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
