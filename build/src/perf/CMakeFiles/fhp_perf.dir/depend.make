# Empty dependencies file for fhp_perf.
# This may be replaced when dependencies are built.
