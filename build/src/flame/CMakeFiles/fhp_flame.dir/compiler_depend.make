# Empty compiler generated dependencies file for fhp_flame.
# This may be replaced when dependencies are built.
