
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flame/adr.cpp" "src/flame/CMakeFiles/fhp_flame.dir/adr.cpp.o" "gcc" "src/flame/CMakeFiles/fhp_flame.dir/adr.cpp.o.d"
  "/root/repo/src/flame/flame_speed.cpp" "src/flame/CMakeFiles/fhp_flame.dir/flame_speed.cpp.o" "gcc" "src/flame/CMakeFiles/fhp_flame.dir/flame_speed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/fhp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/fhp_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/fhp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fhp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
