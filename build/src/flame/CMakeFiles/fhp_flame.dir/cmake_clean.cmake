file(REMOVE_RECURSE
  "CMakeFiles/fhp_flame.dir/adr.cpp.o"
  "CMakeFiles/fhp_flame.dir/adr.cpp.o.d"
  "CMakeFiles/fhp_flame.dir/flame_speed.cpp.o"
  "CMakeFiles/fhp_flame.dir/flame_speed.cpp.o.d"
  "libfhp_flame.a"
  "libfhp_flame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_flame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
