file(REMOVE_RECURSE
  "libfhp_flame.a"
)
