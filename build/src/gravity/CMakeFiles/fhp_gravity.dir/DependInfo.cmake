
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gravity/monopole.cpp" "src/gravity/CMakeFiles/fhp_gravity.dir/monopole.cpp.o" "gcc" "src/gravity/CMakeFiles/fhp_gravity.dir/monopole.cpp.o.d"
  "/root/repo/src/gravity/white_dwarf.cpp" "src/gravity/CMakeFiles/fhp_gravity.dir/white_dwarf.cpp.o" "gcc" "src/gravity/CMakeFiles/fhp_gravity.dir/white_dwarf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fhp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/fhp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/eos/CMakeFiles/fhp_eos.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/fhp_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fhp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/fhp_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
