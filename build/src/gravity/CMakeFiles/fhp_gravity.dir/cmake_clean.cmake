file(REMOVE_RECURSE
  "CMakeFiles/fhp_gravity.dir/monopole.cpp.o"
  "CMakeFiles/fhp_gravity.dir/monopole.cpp.o.d"
  "CMakeFiles/fhp_gravity.dir/white_dwarf.cpp.o"
  "CMakeFiles/fhp_gravity.dir/white_dwarf.cpp.o.d"
  "libfhp_gravity.a"
  "libfhp_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
