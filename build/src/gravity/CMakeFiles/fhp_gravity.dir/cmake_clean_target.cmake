file(REMOVE_RECURSE
  "libfhp_gravity.a"
)
