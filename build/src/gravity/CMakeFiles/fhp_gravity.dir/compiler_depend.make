# Empty compiler generated dependencies file for fhp_gravity.
# This may be replaced when dependencies are built.
