# Empty compiler generated dependencies file for fhp_hydro.
# This may be replaced when dependencies are built.
