file(REMOVE_RECURSE
  "CMakeFiles/fhp_hydro.dir/hydro.cpp.o"
  "CMakeFiles/fhp_hydro.dir/hydro.cpp.o.d"
  "CMakeFiles/fhp_hydro.dir/riemann.cpp.o"
  "CMakeFiles/fhp_hydro.dir/riemann.cpp.o.d"
  "libfhp_hydro.a"
  "libfhp_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhp_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
