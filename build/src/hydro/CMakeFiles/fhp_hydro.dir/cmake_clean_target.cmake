file(REMOVE_RECURSE
  "libfhp_hydro.a"
)
