# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_eos[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_hydro[1]_include.cmake")
include("/root/repo/build/tests/test_flame_gravity[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint_exact[1]_include.cmake")
