# Empty compiler generated dependencies file for test_checkpoint_exact.
# This may be replaced when dependencies are built.
