file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_exact.dir/test_checkpoint_exact.cpp.o"
  "CMakeFiles/test_checkpoint_exact.dir/test_checkpoint_exact.cpp.o.d"
  "test_checkpoint_exact"
  "test_checkpoint_exact.pdb"
  "test_checkpoint_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
