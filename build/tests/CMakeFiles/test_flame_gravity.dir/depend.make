# Empty dependencies file for test_flame_gravity.
# This may be replaced when dependencies are built.
