file(REMOVE_RECURSE
  "CMakeFiles/test_flame_gravity.dir/test_flame_gravity.cpp.o"
  "CMakeFiles/test_flame_gravity.dir/test_flame_gravity.cpp.o.d"
  "test_flame_gravity"
  "test_flame_gravity.pdb"
  "test_flame_gravity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flame_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
