# Static-analysis targets:
#
#   tidy  — clang-tidy over every first-party translation unit using the
#           checks in .clang-tidy and the compile_commands.json of this
#           build tree. Configured only when clang-tidy is installed;
#           otherwise a stub target explains what is missing instead of
#           silently "passing".
#   lint  — the flashhp repo linter (tools/flashhp_lint.py): huge-page
#           invariants the compiler cannot check. Always available (only
#           needs a Python 3 interpreter) and also registered as a ctest
#           case from tests/CMakeLists.txt.
#   analyze — the structural analyzer (tools/fhp_analyze.py): module
#           layering DAG, include-graph cycles, allocation freedom in
#           parallel regions and FHP_NO_ALLOC bodies. Driven from this
#           build tree's compile_commands.json so it scans exactly the
#           TUs the build compiles (plus every header under src/).
#
# The clang static analyzer (scan-build) is not a target here: it has to
# wrap the compiler, so CI runs `analyze-build --cdb
# build/compile_commands.json --status-bugs` directly (see the analyze
# job in .github/workflows/ci.yml).

set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
                                  clang-tidy-16 clang-tidy-15)

if(CLANG_TIDY_EXE)
  file(GLOB_RECURSE FLASHHP_TIDY_SOURCES CONFIGURE_DEPENDS
    ${CMAKE_SOURCE_DIR}/src/*.cpp)
  add_custom_target(tidy
    COMMAND ${CLANG_TIDY_EXE}
      -p ${CMAKE_BINARY_DIR}
      --warnings-as-errors=*
      ${FLASHHP_TIDY_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy (checks from .clang-tidy)"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
      "clang-tidy not found: install clang-tidy and re-run cmake"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "clang-tidy unavailable"
    VERBATIM)
endif()

find_package(Python3 COMPONENTS Interpreter)
if(Python3_Interpreter_FOUND)
  add_custom_target(lint
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/flashhp_lint.py
      --root ${CMAKE_SOURCE_DIR}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "flashhp_lint.py (huge-page invariant linter)"
    VERBATIM)

  add_custom_target(analyze
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/fhp_analyze.py
      --root ${CMAKE_SOURCE_DIR} -p ${CMAKE_BINARY_DIR}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "fhp_analyze.py (layering / region-allocation analyzer)"
    VERBATIM)
endif()
