# Sanitizer support: set FLASHHP_SANITIZE to a semicolon-separated list of
#   address;undefined   (the `asan-ubsan` preset)
#   thread              (the `tsan` preset)
#   leak
# Flags are applied globally (compile + link) so every target — library,
# test, bench, example — runs under the same instrumentation; mixing
# sanitized and unsanitized TUs produces false negatives.
#
# UBSan runs with -fno-sanitize-recover so any report fails the test that
# triggered it: "zero sanitizer reports" is enforced by ctest, not by
# somebody reading logs (the paper's lesson about trusting silent tools).

set(FLASHHP_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined;thread;leak")

if(FLASHHP_SANITIZE)
  set(_fhp_san_list "")
  foreach(_san IN LISTS FLASHHP_SANITIZE)
    string(TOLOWER "${_san}" _san)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
        "FLASHHP_SANITIZE: unknown sanitizer '${_san}' "
        "(expected address, undefined, thread or leak)")
    endif()
    list(APPEND _fhp_san_list "${_san}")
  endforeach()

  if("thread" IN_LIST _fhp_san_list AND
     ("address" IN_LIST _fhp_san_list OR "leak" IN_LIST _fhp_san_list))
    message(FATAL_ERROR
      "FLASHHP_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()

  list(JOIN _fhp_san_list "," _fhp_san_joined)
  message(STATUS "flashhp: sanitizers enabled: ${_fhp_san_joined}")

  add_compile_options(
    -fsanitize=${_fhp_san_joined}
    -fno-omit-frame-pointer
    -fno-optimize-sibling-calls)
  add_link_options(-fsanitize=${_fhp_san_joined})

  if("undefined" IN_LIST _fhp_san_list)
    # Abort on the first UB report instead of logging and continuing.
    add_compile_options(-fno-sanitize-recover=undefined)
    add_link_options(-fno-sanitize-recover=undefined)
  endif()
endif()
